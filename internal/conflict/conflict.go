// Package conflict implements the conflict manager invoked by isolation
// barriers and transactional open-for-read/write operations when multiple
// threads contend for the same transaction record.
//
// Per Section 3.2, the default manager "backs off and returns so that the
// barriers retry"; alternatively conflicts "could signal a race by throwing
// an exception or breaking to the debugger", which is how isolation
// barriers can aid in debugging concurrent programs. All three policies are
// available here: exponential backoff, a panic policy, and a reporting
// policy that records each conflict for later inspection.
package conflict

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Kind classifies the access that hit a conflict.
type Kind uint8

// Conflict kinds.
const (
	NonTxnRead    Kind = iota // non-transactional read barrier
	NonTxnWrite               // non-transactional write barrier
	TxnRead                   // transactional open-for-read
	TxnWrite                  // transactional open-for-write
	TxnValidation             // read-set validation failure (clock-stale abort)
)

func (k Kind) String() string {
	switch k {
	case NonTxnRead:
		return "non-txn-read"
	case NonTxnWrite:
		return "non-txn-write"
	case TxnRead:
		return "txn-read"
	case TxnWrite:
		return "txn-write"
	case TxnValidation:
		return "txn-validation"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Info describes one conflict event passed to a Handler or Policy.
//
// The Self/Owner fields exist for policies that arbitrate between the two
// transactions rather than blindly backing off. Transaction IDs are
// assigned from a runtime-monotonic counter once per top-level atomic
// block (they survive internal retries), so they double as age stamps:
// a smaller ID is an older transaction. Zero means "unknown" — a conflict
// raised by a non-transactional barrier has no Self, and a record owned by
// an anonymous (non-transactional) writer has no Owner.
type Info struct {
	Kind    Kind
	Attempt int    // 0-based retry attempt for this access
	Record  uint64 // transaction-record word observed
	Obj     uint64 // contended object's handle; 0 if unknown

	Self     uint64 // contender's transaction ID (age stamp); 0 outside a transaction
	SelfPrio int64  // contender's accumulated priority (Karma policies)

	Owner       uint64 // owning transaction's ID, if Record is transactionally owned
	OwnerPrio   int64  // owner's accumulated priority, valid only if OwnerActive
	OwnerActive bool   // owner's descriptor was found live in the registry

	// OwnerIrrevocable reports that the owner holds the runtime's
	// irrevocable token. Arbitrating policies must yield (Wait) rather than
	// decide AbortOther: an irrevocable transaction cannot be doomed (the
	// runtime would refuse anyway), so an AbortOther decision against it
	// would spin issuing dooms that never land.
	OwnerIrrevocable bool
}

// Handler decides what to do about a conflict. Returning normally means
// "retry the access"; a handler may also panic to surface the race.
type Handler interface {
	HandleConflict(Info)
}

// Stats counts conflict events per kind. The counters are sharded across
// cache lines: conflicts are by construction the moments when many threads
// converge on the same object, so a single shared counter here would
// serialize exactly the threads that are already contending.
type Stats struct {
	counts [5]stats.Counter
}

// Count returns the number of conflicts of kind k handled so far.
func (s *Stats) Count(k Kind) int64 { return s.counts[k].Load() }

// Total returns the number of conflicts of all kinds.
func (s *Stats) Total() int64 {
	var t int64
	for i := range s.counts {
		t += s.counts[i].Load()
	}
	return t
}

func (s *Stats) record(k Kind) { s.counts[k].Add(1) }

// StaleObserver is implemented by handlers or policies that want to see
// validation failures. Unlike the Handler conflicts — where a thread meets
// a record someone else owns and can wait — a validation failure means the
// observing transaction is already doomed to abort: the runtime reports it
// (Kind TxnValidation, Obj the first inconsistent object, Record its
// current word) and restarts regardless of any decision. Observers use the
// signal for attribution: under commit-clock validation these clock-stale
// aborts are exactly the cost of sharing a heap with writers, so a policy
// can feed them into the same priority accounting as ordinary conflicts.
type StaleObserver interface {
	ObserveValidationAbort(Info)
}

// Backoff is the default handler: exponential backoff capped at maxSpin
// iterations, yielding to the scheduler between rounds. It is safe for
// concurrent use.
type Backoff struct {
	Stats Stats

	// MaxSleep bounds the per-conflict sleep once spinning escalates.
	// Zero means DefaultMaxSleep.
	MaxSleep time.Duration
}

// DefaultMaxSleep is the backoff sleep cap.
const DefaultMaxSleep = 100 * time.Microsecond

// HandleConflict implements Handler with bounded exponential backoff.
func (b *Backoff) HandleConflict(info Info) {
	b.Stats.record(info.Kind)
	WaitAttempt(info.Attempt, b.MaxSleep)
}

// WaitAttempt performs the backoff for the given 0-based attempt number:
// brief spinning for early attempts, then scheduler yields, then sleeps
// with exponentially growing duration capped at maxSleep.
func WaitAttempt(attempt int, maxSleep time.Duration) {
	switch {
	case attempt < 4:
		spin(1 << uint(attempt))
	case attempt < 10:
		runtime.Gosched()
	default:
		if maxSleep <= 0 {
			maxSleep = DefaultMaxSleep
		}
		shift := attempt - 10
		if shift > 12 {
			shift = 12
		}
		d := time.Microsecond << uint(shift)
		if d > maxSleep {
			d = maxSleep
		}
		time.Sleep(d)
	}
}

var spinSink atomic.Int64

// spin burns roughly n iterations of local work. The loop body is plain
// arithmetic with a single atomic store of the result at the end: spinning
// threads must not hammer a shared cache line (an atomic add per iteration
// would make the backoff itself a contention point), but the result has to
// reach a global so the compiler cannot delete the loop.
func spin(n int) {
	s := int64(1)
	for i := 0; i < n; i++ {
		s += s<<1 ^ int64(i)
	}
	spinSink.Store(s)
}

// Panic is a handler that raises a RaceError, the "throw an exception"
// policy. Useful in tests that must prove a conflict occurs.
type Panic struct{ Stats Stats }

// RaceError is the panic value raised by the Panic handler.
type RaceError struct{ Info Info }

func (e RaceError) Error() string {
	return fmt.Sprintf("isolation conflict detected: %v (record %#x, attempt %d)",
		e.Info.Kind, e.Info.Record, e.Info.Attempt)
}

// HandleConflict implements Handler by panicking with a RaceError.
func (p *Panic) HandleConflict(info Info) {
	p.Stats.record(info.Kind)
	panic(RaceError{Info: info})
}

// Reporter records every conflict (up to Limit) and then delegates to a
// backoff so execution continues — the "break to the debugger" policy in
// spirit: the program keeps running and the races are available afterward.
type Reporter struct {
	Stats   Stats
	Limit   int // max events retained; 0 means 1024
	mu      sync.Mutex
	events  []Info
	dropped int64
}

// HandleConflict implements Handler.
func (r *Reporter) HandleConflict(info Info) {
	r.Stats.record(info.Kind)
	limit := r.Limit
	if limit == 0 {
		limit = 1024
	}
	r.mu.Lock()
	if len(r.events) < limit {
		r.events = append(r.events, info)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	WaitAttempt(info.Attempt, 0)
}

// Events returns a copy of the recorded conflicts and the count of dropped
// events beyond the limit.
func (r *Reporter) Events() ([]Info, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Info(nil), r.events...), r.dropped
}
