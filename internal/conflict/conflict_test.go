package conflict

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		NonTxnRead:  "non-txn-read",
		NonTxnWrite: "non-txn-write",
		TxnRead:     "txn-read",
		TxnWrite:    "txn-write",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if !strings.HasPrefix(Kind(9).String(), "Kind(") {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestBackoffCountsAndReturns(t *testing.T) {
	b := &Backoff{}
	for i := 0; i < 5; i++ {
		b.HandleConflict(Info{Kind: TxnWrite, Attempt: i})
	}
	b.HandleConflict(Info{Kind: NonTxnRead, Attempt: 0})
	if b.Stats.Count(TxnWrite) != 5 || b.Stats.Count(NonTxnRead) != 1 {
		t.Errorf("counts = %d/%d", b.Stats.Count(TxnWrite), b.Stats.Count(NonTxnRead))
	}
	if b.Stats.Total() != 6 {
		t.Errorf("total = %d", b.Stats.Total())
	}
}

func TestBackoffEscalates(t *testing.T) {
	// High attempt numbers must sleep (bounded); just verify it returns
	// promptly and takes at least a microsecond-ish pause.
	b := &Backoff{MaxSleep: 200 * time.Microsecond}
	start := time.Now()
	b.HandleConflict(Info{Kind: TxnRead, Attempt: 20})
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("backoff slept too long: %v", d)
	}
}

func TestPanicHandler(t *testing.T) {
	p := &Panic{}
	defer func() {
		r := recover()
		re, ok := r.(RaceError)
		if !ok {
			t.Fatalf("recovered %T, want RaceError", r)
		}
		if re.Info.Kind != NonTxnWrite || !strings.Contains(re.Error(), "non-txn-write") {
			t.Errorf("race error = %v", re)
		}
		if p.Stats.Count(NonTxnWrite) != 1 {
			t.Error("panic handler did not count")
		}
	}()
	p.HandleConflict(Info{Kind: NonTxnWrite, Record: 0x2a})
}

func TestReporterRecordsAndCaps(t *testing.T) {
	r := &Reporter{Limit: 3}
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.HandleConflict(Info{Kind: TxnRead, Attempt: i})
		}(i)
	}
	wg.Wait()
	events, dropped := r.Events()
	if len(events) != 3 {
		t.Errorf("events = %d, want 3 (capped)", len(events))
	}
	if dropped != 7 {
		t.Errorf("dropped = %d, want 7", dropped)
	}
	if r.Stats.Count(TxnRead) != 10 {
		t.Errorf("stats = %d", r.Stats.Count(TxnRead))
	}
}

func TestReporterDefaultLimit(t *testing.T) {
	r := &Reporter{}
	r.HandleConflict(Info{Kind: TxnRead})
	events, dropped := r.Events()
	if len(events) != 1 || dropped != 0 {
		t.Errorf("events=%d dropped=%d", len(events), dropped)
	}
}

func TestWaitAttemptAllPhases(t *testing.T) {
	// Spin, yield, and sleep phases must all return.
	for _, attempt := range []int{0, 2, 5, 9, 10, 15, 30} {
		WaitAttempt(attempt, time.Millisecond)
	}
}
