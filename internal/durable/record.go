// Package durable turns an STM runtime into a durable transactional store:
// commit-time redo records stream through a group-committed write-ahead log,
// periodic heap snapshots bound replay, and recovery-on-open rebuilds the
// committed heap image from the latest snapshot plus the WAL tail.
//
// The design follows the repo's isolation story into the failure domain. The
// runtimes guarantee that a commit's writes become visible atomically; the
// store extends that boundary across a crash: a transaction whose Atomic call
// returned nil with a commit sink installed is durable (its redo record was
// fsynced before the ack), and a transaction that aborted — or whose commit
// was still in flight at the crash — leaves no trace after recovery.
//
// All file I/O goes through internal/vfs, so the same store code runs on the
// real file system (vfs.OS) and on the fault-injecting in-memory file system
// (vfs.FaultFS) that lies about fsync, tears unsynced tails, and forgets
// renames — the failure models the crash harness (internal/durability)
// verifies against.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

// WAL record kinds.
const (
	kindCommit byte = 1 // one committed transaction's redo image
	kindEpoch  byte = 2 // process-generation marker, first record of every open
)

// recordMagic starts every WAL record frame ("WL1\n").
const recordMagic uint32 = 0x574c310a

// recordHeaderLen is magic + payload length + payload CRC.
const recordHeaderLen = 12

// record is one WAL entry. Commit records carry the transaction's full redo
// image as absolute slot values, so replay is idempotent: applying a prefix
// of the log twice, or over a snapshot that already contains it, converges
// to the same heap. Epoch records carry only the epoch; (Epoch, TxnID)
// uniquely identifies a commit across process generations, because every
// open starts a new epoch.
type record struct {
	Kind   byte
	Epoch  uint64
	TxnID  uint64
	Stamp  uint64
	Writes []stmapi.RedoWrite
}

// Decode errors. errShortRecord means the buffer ends mid-record — at the
// tail of the last segment that is a torn write, not corruption, and replay
// treats it as end-of-log. errCorruptRecord means the frame is well-delimited
// but wrong (bad magic or checksum).
var (
	errShortRecord   = errors.New("durable: truncated record")
	errCorruptRecord = errors.New("durable: corrupt record")
)

// appendRecord encodes r onto dst and returns the extended slice.
// Frame: u32 magic | u32 payload len | u32 crc32(payload) | payload.
// Payload: u8 kind | u64 epoch | u64 txnid | u64 stamp | u32 nwrites |
// nwrites × (u64 ref | u32 slot | u64 val). All little-endian.
func appendRecord(dst []byte, r *record) []byte {
	payloadLen := 1 + 8 + 8 + 8 + 4 + len(r.Writes)*20
	start := len(dst)
	dst = append(dst, make([]byte, recordHeaderLen+payloadLen)...)
	p := dst[start:]
	binary.LittleEndian.PutUint32(p[0:], recordMagic)
	binary.LittleEndian.PutUint32(p[4:], uint32(payloadLen))
	payload := p[recordHeaderLen:]
	payload[0] = r.Kind
	binary.LittleEndian.PutUint64(payload[1:], r.Epoch)
	binary.LittleEndian.PutUint64(payload[9:], r.TxnID)
	binary.LittleEndian.PutUint64(payload[17:], r.Stamp)
	binary.LittleEndian.PutUint32(payload[25:], uint32(len(r.Writes)))
	off := 29
	for _, w := range r.Writes {
		binary.LittleEndian.PutUint64(payload[off:], uint64(w.Ref))
		binary.LittleEndian.PutUint32(payload[off+8:], uint32(w.Slot))
		binary.LittleEndian.PutUint64(payload[off+12:], w.Val)
		off += 20
	}
	binary.LittleEndian.PutUint32(p[8:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodeRecord parses one record from the front of b, returning the record
// and the number of bytes consumed. A buffer that ends mid-frame returns
// errShortRecord; a complete frame that fails validation returns
// errCorruptRecord.
func decodeRecord(b []byte) (record, int, error) {
	var r record
	if len(b) < recordHeaderLen {
		return r, 0, errShortRecord
	}
	if binary.LittleEndian.Uint32(b[0:]) != recordMagic {
		return r, 0, errCorruptRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[4:]))
	if payloadLen < 29 {
		return r, 0, errCorruptRecord
	}
	if len(b) < recordHeaderLen+payloadLen {
		return r, 0, errShortRecord
	}
	payload := b[recordHeaderLen : recordHeaderLen+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[8:]) {
		return r, 0, errCorruptRecord
	}
	r.Kind = payload[0]
	r.Epoch = binary.LittleEndian.Uint64(payload[1:])
	r.TxnID = binary.LittleEndian.Uint64(payload[9:])
	r.Stamp = binary.LittleEndian.Uint64(payload[17:])
	n := int(binary.LittleEndian.Uint32(payload[25:]))
	if payloadLen != 29+n*20 {
		return r, 0, errCorruptRecord
	}
	if n > 0 {
		r.Writes = make([]stmapi.RedoWrite, n)
		off := 29
		for i := range r.Writes {
			r.Writes[i] = stmapi.RedoWrite{
				Ref:  objmodel.Ref(binary.LittleEndian.Uint64(payload[off:])),
				Slot: int(binary.LittleEndian.Uint32(payload[off+8:])),
				Val:  binary.LittleEndian.Uint64(payload[off+12:]),
			}
			off += 20
		}
	}
	switch r.Kind {
	case kindCommit, kindEpoch:
	default:
		return r, 0, fmt.Errorf("%w: unknown kind %d", errCorruptRecord, r.Kind)
	}
	return r, recordHeaderLen + payloadLen, nil
}
