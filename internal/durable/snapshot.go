package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/vfs"
)

// snapMagic starts every snapshot file ("SN1\n").
const snapMagic uint32 = 0x534e310a

// objImage is one object's slot values in a heap image.
type objImage struct {
	Ref  objmodel.Ref
	Vals []uint64
}

// snapshot is a consistent committed heap image plus the metadata recovery
// needs: the epoch that wrote it, the commit-clock stamp its contents are
// current to, and the WAL segment index replay must resume from (every
// segment with a smaller index is fully covered by the image).
type snapshot struct {
	Epoch    uint64
	Stamp    uint64
	SegIndex int
	Objs     []objImage
}

const snapPrefix = "snap-"

func snapName(segIndex int, stamp uint64) string {
	return fmt.Sprintf("%s%06d-%016x.snap", snapPrefix, segIndex, stamp)
}

// parseSnapName extracts (segIndex, stamp) from a snapshot file name.
func parseSnapName(name string) (segIndex int, stamp uint64, ok bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, ".snap") {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), ".snap")
	dash := strings.IndexByte(body, '-')
	if dash < 0 {
		return 0, 0, false
	}
	seg, err := strconv.Atoi(body[:dash])
	if err != nil || seg < 1 {
		return 0, 0, false
	}
	st, err := strconv.ParseUint(body[dash+1:], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return seg, st, true
}

// encodeSnapshot serializes s: u32 magic | u32 payload len | u32 crc | payload.
// Payload: u64 epoch | u64 stamp | u64 segIndex | u64 nobjs |
// nobjs × (u64 ref | u32 nslots | nslots × u64).
func encodeSnapshot(s *snapshot) []byte {
	payloadLen := 32
	for _, o := range s.Objs {
		payloadLen += 12 + 8*len(o.Vals)
	}
	buf := make([]byte, recordHeaderLen+payloadLen)
	binary.LittleEndian.PutUint32(buf[0:], snapMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(payloadLen))
	p := buf[recordHeaderLen:]
	binary.LittleEndian.PutUint64(p[0:], s.Epoch)
	binary.LittleEndian.PutUint64(p[8:], s.Stamp)
	binary.LittleEndian.PutUint64(p[16:], uint64(s.SegIndex))
	binary.LittleEndian.PutUint64(p[24:], uint64(len(s.Objs)))
	off := 32
	for _, o := range s.Objs {
		binary.LittleEndian.PutUint64(p[off:], uint64(o.Ref))
		binary.LittleEndian.PutUint32(p[off+8:], uint32(len(o.Vals)))
		off += 12
		for _, v := range o.Vals {
			binary.LittleEndian.PutUint64(p[off:], v)
			off += 8
		}
	}
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(p))
	return buf
}

// decodeSnapshot validates and parses a snapshot file image.
func decodeSnapshot(b []byte) (*snapshot, error) {
	if len(b) < recordHeaderLen {
		return nil, errCorruptRecord
	}
	if binary.LittleEndian.Uint32(b[0:]) != snapMagic {
		return nil, errCorruptRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[4:]))
	if payloadLen < 32 || len(b) < recordHeaderLen+payloadLen {
		return nil, errCorruptRecord
	}
	p := b[recordHeaderLen : recordHeaderLen+payloadLen]
	if crc32.ChecksumIEEE(p) != binary.LittleEndian.Uint32(b[8:]) {
		return nil, errCorruptRecord
	}
	s := &snapshot{
		Epoch:    binary.LittleEndian.Uint64(p[0:]),
		Stamp:    binary.LittleEndian.Uint64(p[8:]),
		SegIndex: int(binary.LittleEndian.Uint64(p[16:])),
	}
	nobjs := int(binary.LittleEndian.Uint64(p[24:]))
	off := 32
	for i := 0; i < nobjs; i++ {
		if off+12 > payloadLen {
			return nil, errCorruptRecord
		}
		o := objImage{Ref: objmodel.Ref(binary.LittleEndian.Uint64(p[off:]))}
		n := int(binary.LittleEndian.Uint32(p[off+8:]))
		off += 12
		if off+8*n > payloadLen {
			return nil, errCorruptRecord
		}
		o.Vals = make([]uint64, n)
		for j := range o.Vals {
			o.Vals[j] = binary.LittleEndian.Uint64(p[off:])
			off += 8
		}
		s.Objs = append(s.Objs, o)
	}
	return s, nil
}

// writeSnapshot persists s atomically: write to a .tmp, fsync the file,
// rename it into place, fsync the directory. The WALRename injection point
// fires between the file fsync and the rename — killing there must leave the
// previous snapshot (or none) intact, which recovery tolerates by replaying
// a longer WAL tail.
func writeSnapshot(fs vfs.FS, dir string, inj *faultinject.Injector, s *snapshot) error {
	final := filepath.Join(dir, snapName(s.SegIndex, s.Stamp))
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSnapshot(s)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if inj != nil {
		inj.Fire(faultinject.WALRename, s.Stamp)
	}
	if err := fs.Rename(tmp, final); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// loadBestSnapshot returns the newest decodable snapshot in dir (highest
// (segIndex, stamp) whose checksum validates), or nil if none exists.
// Corrupt candidates are skipped, not fatal: a crash mid-snapshot leaves a
// valid older image behind.
func loadBestSnapshot(fs vfs.FS, dir string) (*snapshot, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type cand struct {
		name  string
		seg   int
		stamp uint64
	}
	var cands []cand
	for _, name := range names {
		if seg, stamp, ok := parseSnapName(name); ok {
			cands = append(cands, cand{name, seg, stamp})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seg != cands[j].seg {
			return cands[i].seg > cands[j].seg
		}
		return cands[i].stamp > cands[j].stamp
	})
	for _, c := range cands {
		data, err := fs.ReadFile(filepath.Join(dir, c.name))
		if err != nil {
			continue
		}
		if s, err := decodeSnapshot(data); err == nil {
			return s, nil
		}
	}
	return nil, nil
}
