package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/vfs"
)

// errWALClosed is returned to appenders and waiters racing a Close.
var errWALClosed = errors.New("durable: WAL closed")

// wal is the group-committed write-ahead log. Appenders encode records into
// an in-memory batch under mu and block in Wait; a background flusher writes
// and fsyncs the accumulated batch — one fsync covers every record appended
// since the previous flush, which is the entire point: fsync cost is paid
// per batch, not per transaction.
//
// With SyncWindow == 0 every append kicks the flusher immediately, so the
// batch is whatever piled up during the previous fsync (natural group commit
// under concurrency, sync-per-commit when idle). With SyncWindow > 0 the
// flusher runs on that period and commits ack with up to one window of
// latency — the tunable durability/throughput knob.
type wal struct {
	fs     vfs.FS
	dir    string
	inj    *faultinject.Injector
	window time.Duration

	// wmu serializes file writes and rotation; flushes hold it across the
	// Write+Sync pair so a rotate cannot swap the file mid-batch.
	wmu      sync.Mutex
	f        vfs.File
	segIndex int

	mu         sync.Mutex
	cond       *sync.Cond
	buf        []byte // encoded records awaiting flush
	spare      []byte // recycled buffer for double-buffering
	pendingSeq uint64 // seq of the last record appended to buf
	pendingN   int64  // records in buf
	syncedSeq  uint64 // seq of the last record known durable
	err        error  // first flush error; sticky, poisons the log
	closed     bool

	stop     chan struct{}
	kick     chan struct{}
	done     chan struct{}
	appends  atomic.Int64
	fsyncs   atomic.Int64
	batchMax atomic.Int64
	batchSum atomic.Int64
	batchN   atomic.Int64
	rotates  atomic.Int64
}

const segPrefix = "seg-"

func segName(index int) string { return fmt.Sprintf("%s%06d.wal", segPrefix, index) }

// parseSegName returns the segment index encoded in a directory entry, or
// ok=false for non-segment entries.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ".wal"))
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// openWAL creates segment segIndex (which must not exist: recovery always
// starts a fresh segment past any possibly-torn tail) and starts the
// flusher.
func openWAL(fs vfs.FS, dir string, segIndex int, window time.Duration, inj *faultinject.Injector) (*wal, error) {
	f, err := fs.OpenFile(filepath.Join(dir, segName(segIndex)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{
		fs: fs, dir: dir, inj: inj, window: window,
		f: f, segIndex: segIndex,
		stop: make(chan struct{}), kick: make(chan struct{}, 1), done: make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	go w.flushLoop()
	return w, nil
}

// Append encodes r into the pending batch and returns its sequence number
// (always non-zero). The record is NOT durable until Wait(seq) returns nil.
func (w *wal) Append(r *record) (uint64, error) {
	if fi := w.inj; fi != nil {
		fi.Fire(faultinject.WALAppend, r.TxnID)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, errWALClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	w.buf = appendRecord(w.buf, r)
	w.pendingSeq++
	w.pendingN++
	seq := w.pendingSeq
	w.mu.Unlock()
	w.appends.Add(1)
	if w.window == 0 {
		w.kickFlusher()
	}
	return seq, nil
}

func (w *wal) kickFlusher() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// Wait blocks until seq is durable (the batch containing it was fsynced),
// the log is poisoned by a flush error, or the log is closed.
func (w *wal) Wait(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedSeq < seq && w.err == nil && !w.closed {
		w.cond.Wait()
	}
	if w.err != nil {
		return w.err
	}
	if w.syncedSeq < seq {
		return errWALClosed
	}
	return nil
}

func (w *wal) flushLoop() {
	defer close(w.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if w.window > 0 {
		tick = time.NewTicker(w.window)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-w.stop:
			return
		case <-tickC:
		case <-w.kick:
		}
		w.flush()
	}
}

// flush writes and fsyncs the pending batch, then wakes every waiter.
func (w *wal) flush() {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.flushLocked()
}

// flushLocked is flush with wmu already held (rotate calls it directly).
func (w *wal) flushLocked() {
	w.mu.Lock()
	if w.err != nil || len(w.buf) == 0 {
		w.mu.Unlock()
		return
	}
	data := w.buf
	w.buf = w.spare[:0]
	upTo := w.pendingSeq
	n := w.pendingN
	w.pendingN = 0
	w.mu.Unlock()

	_, err := w.f.Write(data)
	if err == nil {
		if fi := w.inj; fi != nil {
			fi.Fire(faultinject.WALFsync, upTo)
		}
		err = w.f.Sync()
		w.fsyncs.Add(1)
	}
	w.batchSum.Add(n)
	w.batchN.Add(1)
	if m := w.batchMax.Load(); n > m {
		w.batchMax.CompareAndSwap(m, n)
	}

	w.mu.Lock()
	w.spare = data[:0]
	if err != nil {
		w.err = err
	} else if upTo > w.syncedSeq {
		w.syncedSeq = upTo
	}
	w.cond.Broadcast()
	w.mu.Unlock()
}

// Sync forces the pending batch out and returns the first flush error, if
// any. Used for records that must be durable immediately (epoch markers).
func (w *wal) Sync() error {
	w.flush()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// rotate flushes and closes the current segment, then starts the next one.
// It returns the new segment's index; every record appended before the call
// is durable in a segment with a smaller index when it returns.
func (w *wal) rotate() (int, error) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.flushLocked()
	w.mu.Lock()
	if err := w.err; err != nil {
		w.mu.Unlock()
		return 0, err
	}
	w.mu.Unlock()
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	next := w.segIndex + 1
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, w.poison(err)
	}
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return 0, w.poison(err)
	}
	w.f = f
	w.segIndex = next
	w.rotates.Add(1)
	return next, nil
}

// poison records a fatal error so appenders and waiters stop blocking.
func (w *wal) poison(err error) error {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// Close stops the flusher. With flush set the pending batch is written and
// fsynced first (clean shutdown); without it the batch is dropped on the
// floor (crash simulation — the store's Abandon path).
func (w *wal) Close(flush bool) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	close(w.stop)
	<-w.done
	if flush {
		w.flush()
	}
	w.mu.Lock()
	err := w.err
	w.mu.Unlock()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// listSegments returns the WAL segment indices present in dir, sorted.
func listSegments(fs vfs.FS, dir string) ([]int, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, name := range names {
		if n, ok := parseSegName(name); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}
