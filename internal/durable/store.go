package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/vfs"
)

// Options configures a Store.
type Options struct {
	// Dir is the store's directory (created if absent): WAL segments,
	// snapshots, nothing else.
	Dir string

	// FS is the file system to run on; nil means the real one (vfs.OS).
	FS vfs.FS

	// Runtime names the STM runtime (a stmapi registry key: "eager",
	// "lazy", "mv"). It must implement stmapi.DurableRuntime.
	Runtime string

	// Common is the runtime configuration.
	Common stmapi.CommonConfig

	// SyncWindow is the group-commit window: 0 fsyncs as soon as the
	// flusher can keep up (lowest latency), >0 batches all commits in each
	// window into one fsync (highest throughput, up to one window of ack
	// latency).
	SyncWindow time.Duration

	// Injector, when non-nil, is installed on the runtime and fired at the
	// WAL points (wal-append, wal-fsync, wal-rename) — the whitebox crash
	// harness's hook. Orphan injection at the commit-protocol points is
	// incompatible with a durable store: an orphaned-then-stolen commit is
	// visible in memory but never reaches the WAL.
	Injector *faultinject.Injector

	// CheckpointEvery starts a background checkpointer with that period;
	// 0 disables it (checkpoints still happen at open and on demand).
	CheckpointEvery time.Duration

	// NoOpenCheckpoint skips the checkpoint normally taken right after
	// recovery. Verification opens use it to inspect exactly the recovered
	// state without rewriting anything.
	NoOpenCheckpoint bool

	// DrainTimeout bounds the commit-gate drain in a live (multi-version)
	// checkpoint; 0 means 2s. On timeout the checkpoint is skipped — never
	// taken inconsistently.
	DrainTimeout time.Duration

	// TrackStamps keeps an in-memory txnID→stamp map that TakeStamp pops,
	// so a caller can learn the commit stamp (LSN) of a transaction it just
	// ran. The crash harness needs this; benchmarks leave it off (the map
	// would grow with every commit until popped).
	TrackStamps bool
}

// TxnStamp identifies one committed transaction across process generations.
type TxnStamp struct {
	Epoch uint64 `json:"epoch"`
	TxnID uint64 `json:"txn_id"`
	Stamp uint64 `json:"stamp"`
}

// RecoveryInfo reports what recovery-on-open found and replayed.
type RecoveryInfo struct {
	// Epoch is the new process generation (max seen + 1).
	Epoch uint64 `json:"epoch"`
	// SnapshotStamp is the commit-clock stamp of the snapshot the heap was
	// loaded from (0 if none existed).
	SnapshotStamp uint64 `json:"snapshot_stamp"`
	// Segments and Records count what the WAL tail replay consumed.
	Segments int `json:"segments"`
	Records  int `json:"records"`
	// Txns lists every commit record replayed, in log order. Commits older
	// than the snapshot are not listed — they are inside SnapshotStamp.
	Txns []TxnStamp `json:"txns,omitempty"`
	// MaxStamp is the highest commit stamp recovered (snapshot or WAL); the
	// commit clock restarts above it.
	MaxStamp uint64 `json:"max_stamp"`
	// TornTail reports that the last segment ended in a truncated record —
	// expected after a crash mid-append, replay stops there.
	TornTail bool `json:"torn_tail,omitempty"`
}

// DurabilitySnapshot is a point-in-time copy of the store's counters, in the
// shape internal/metrics exports.
type DurabilitySnapshot struct {
	Epoch            uint64  `json:"epoch"`
	WALAppends       int64   `json:"wal_appends"`
	Fsyncs           int64   `json:"fsyncs"`
	GroupCommitBatch int64   `json:"group_commit_batch"` // max records per fsync
	GroupCommitMean  float64 `json:"group_commit_mean"`  // mean records per fsync
	Rotations        int64   `json:"wal_rotations"`
	Snapshots        int64   `json:"snapshots"`
	SnapshotAgeNs    int64   `json:"snapshot_age_ns"`  // since last successful checkpoint
	RecoveryReplays  int64   `json:"recovery_replays"` // WAL records replayed at open
	CheckpointSkips  int64   `json:"checkpoint_skips"` // drain timeouts
}

// Store is a durable STM: a runtime bound to a write-ahead log. Run
// transactions through Atomic/AtomicCtx; when they return nil the commit is
// durable. Reopening the same directory recovers the committed heap.
type Store struct {
	fs   vfs.FS
	dir  string
	rt   stmapi.Runtime
	heap *objmodel.Heap
	wal  *wal
	inj  *faultinject.Injector

	epoch    uint64
	recovery RecoveryInfo

	// gate is the single-writer/many-readers shutter for stop-the-world
	// checkpoints: Atomic holds it shared for the whole transaction, a
	// non-live checkpoint holds it exclusively across rotate+read. The
	// multi-version runtime checkpoints live (DrainCommitters) and never
	// takes the exclusive side.
	gate sync.RWMutex

	trackStamps bool
	stamps      sync.Map // txnID → stamp, popped by TakeStamp

	ckMu         sync.Mutex // serializes checkpoints
	drainTimeout time.Duration
	snapshots    atomic.Int64
	ckSkips      atomic.Int64
	lastSnapNs   atomic.Int64

	ckStop chan struct{}
	ckDone chan struct{}

	closed atomic.Bool
}

// liveCheckpointer is the capability a runtime exposes to checkpoint without
// stopping the world: a barrier proving every commit that entered the commit
// gate before some instant has fully installed (mvstm's DrainCommitters).
type liveCheckpointer interface {
	DrainCommitters(timeout time.Duration) bool
}

// injectable mirrors the SetInjector probe the fault harness uses.
type injectable interface {
	SetInjector(in *faultinject.Injector)
}

// readOnlyRunner is the zero-abort read-only path mvstm exposes; the live
// checkpoint reads the heap through it so the snapshot read can never abort
// a writer or itself.
type readOnlyRunner interface {
	AtomicRead(body func(stmapi.Txn) error) error
}

// errDrainTimeout is returned by Checkpoint when the commit gate would not
// drain; the store keeps running on the old snapshot + longer WAL tail.
var errDrainTimeout = errors.New("durable: checkpoint skipped: commit gate did not drain")

// Open builds the heap via setup, recovers committed state from dir
// (snapshot + WAL tail), constructs the named runtime over it, and starts a
// fresh WAL segment in a new epoch.
//
// setup must be deterministic: it recreates the same object population
// (same refs, same slot counts) on every open — recovery restores values
// into the objects setup allocates. Dynamic allocation inside transactions
// is outside the store's contract.
func Open(opts Options, setup func(*objmodel.Heap) error) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("durable: Options.Dir required")
	}
	fs := opts.FS
	if fs == nil {
		fs = vfs.OS{}
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 2 * time.Second
	}
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}

	heap := objmodel.NewHeap()
	if setup != nil {
		if err := setup(heap); err != nil {
			return nil, fmt.Errorf("durable: setup: %w", err)
		}
	}

	info, maxEpoch, maxSeg, err := recoverState(fs, opts.Dir, heap)
	if err != nil {
		return nil, err
	}
	heap.Clock().Raise(info.MaxStamp)

	rt, err := stmapi.New(opts.Runtime, heap, opts.Common)
	if err != nil {
		return nil, err
	}
	drt, ok := rt.(stmapi.DurableRuntime)
	if !ok {
		return nil, fmt.Errorf("durable: runtime %q does not implement stmapi.DurableRuntime", opts.Runtime)
	}
	if opts.Injector != nil {
		if ir, ok := rt.(injectable); ok {
			ir.SetInjector(opts.Injector)
		}
	}

	info.Epoch = maxEpoch + 1
	w, err := openWAL(fs, opts.Dir, maxSeg+1, opts.SyncWindow, opts.Injector)
	if err != nil {
		return nil, err
	}
	s := &Store{
		fs: fs, dir: opts.Dir, rt: rt, heap: heap, wal: w, inj: opts.Injector,
		epoch: info.Epoch, recovery: info,
		trackStamps:  opts.TrackStamps,
		drainTimeout: opts.DrainTimeout,
	}
	// Stamp the new epoch into the log before any commit can: after a crash,
	// max(epoch) identifies this generation even if it commits nothing.
	if _, err := w.Append(&record{Kind: kindEpoch, Epoch: s.epoch}); err != nil {
		w.Close(false)
		return nil, err
	}
	if err := w.Sync(); err != nil {
		w.Close(false)
		return nil, err
	}
	drt.SetCommitSink(s)

	if !opts.NoOpenCheckpoint {
		if err := s.Checkpoint(); err != nil && !errors.Is(err, errDrainTimeout) {
			s.Close()
			return nil, fmt.Errorf("durable: open checkpoint: %w", err)
		}
	}
	if opts.CheckpointEvery > 0 {
		s.ckStop = make(chan struct{})
		s.ckDone = make(chan struct{})
		go s.checkpointLoop(opts.CheckpointEvery)
	}
	return s, nil
}

// recoverState loads the newest valid snapshot into heap and replays the
// WAL tail over it.
func recoverState(fs vfs.FS, dir string, heap *objmodel.Heap) (RecoveryInfo, uint64, int, error) {
	var info RecoveryInfo
	snap, err := loadBestSnapshot(fs, dir)
	if err != nil {
		return info, 0, 0, err
	}
	maxEpoch := uint64(0)
	replayFrom := 1
	if snap != nil {
		for _, o := range snap.Objs {
			if err := applyWrite(heap, o.Ref, 0, 0, true, o.Vals); err != nil {
				return info, 0, 0, fmt.Errorf("durable: snapshot: %w", err)
			}
		}
		info.SnapshotStamp = snap.Stamp
		info.MaxStamp = snap.Stamp
		maxEpoch = snap.Epoch
		replayFrom = snap.SegIndex
	}

	segs, err := listSegments(fs, dir)
	if err != nil {
		return info, 0, 0, err
	}
	maxSeg := 0
	if n := len(segs); n > 0 {
		maxSeg = segs[n-1]
	}
	var replay []int
	for _, seg := range segs {
		if seg >= replayFrom {
			replay = append(replay, seg)
		}
	}
	if len(replay) > 0 && replay[0] != replayFrom && snap != nil {
		return info, 0, 0, fmt.Errorf("durable: WAL gap: snapshot needs segment %d, oldest present is %d", replayFrom, replay[0])
	}
	for i, seg := range replay {
		if i > 0 && replay[i-1] != seg-1 {
			return info, 0, 0, fmt.Errorf("durable: WAL gap: segment %d follows %d", seg, replay[i-1])
		}
		data, err := fs.ReadFile(filepath.Join(dir, segName(seg)))
		if err != nil {
			return info, 0, 0, err
		}
		info.Segments++
		off := 0
		for off < len(data) {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				// A short or corrupt trailer on the NEWEST segment is a torn
				// crash tail — the clean end of the log. Anywhere else it is
				// real corruption.
				if seg == maxSeg {
					info.TornTail = true
					break
				}
				return info, 0, 0, fmt.Errorf("durable: segment %d offset %d: %w", seg, off, err)
			}
			off += n
			info.Records++
			if rec.Epoch > maxEpoch {
				maxEpoch = rec.Epoch
			}
			switch rec.Kind {
			case kindEpoch:
			case kindCommit:
				for _, wr := range rec.Writes {
					if err := applyWrite(heap, wr.Ref, wr.Slot, wr.Val, false, nil); err != nil {
						return info, 0, 0, fmt.Errorf("durable: segment %d: %w", seg, err)
					}
				}
				info.Txns = append(info.Txns, TxnStamp{Epoch: rec.Epoch, TxnID: rec.TxnID, Stamp: rec.Stamp})
				if rec.Stamp > info.MaxStamp {
					info.MaxStamp = rec.Stamp
				}
			}
		}
	}
	return info, maxEpoch, maxSeg, nil
}

// applyWrite restores recovered values into the setup-built heap, checking
// that the referenced object exists and is wide enough. bulk selects
// whole-object restore (snapshot) vs single slot (WAL redo).
func applyWrite(heap *objmodel.Heap, ref objmodel.Ref, slot int, val uint64, bulk bool, vals []uint64) error {
	if ref == objmodel.Null || int(ref) > heap.Len() {
		return fmt.Errorf("object %d not in setup heap (%d objects) — setup not deterministic?", ref, heap.Len())
	}
	o := heap.Get(ref)
	if bulk {
		if len(vals) != len(o.Slots) {
			return fmt.Errorf("object %d has %d slots, image has %d — setup not deterministic?", ref, len(o.Slots), len(vals))
		}
		for i, v := range vals {
			o.StoreSlot(i, v)
		}
		return nil
	}
	if slot < 0 || slot >= len(o.Slots) {
		return fmt.Errorf("object %d slot %d out of range (%d slots)", ref, slot, len(o.Slots))
	}
	o.StoreSlot(slot, val)
	return nil
}

// Runtime returns the driver-facing runtime. Run transactions through the
// Store's Atomic wrappers, not the runtime's, so checkpoints can quiesce.
func (s *Store) Runtime() stmapi.Runtime { return s.rt }

// Heap returns the managed heap.
func (s *Store) Heap() *objmodel.Heap { return s.heap }

// Recovery reports what recovery-on-open found.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Epoch returns this process generation's epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// Atomic runs body as a durable transaction: when it returns nil the
// commit's redo record has been fsynced.
func (s *Store) Atomic(body func(stmapi.Txn) error) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	return s.rt.Atomic(body)
}

// AppendRedo implements stmapi.CommitSink: called by the runtime at the
// commit point with the transaction's redo image.
func (s *Store) AppendRedo(txnID, stamp uint64, writes []stmapi.RedoWrite) (uint64, error) {
	if s.trackStamps {
		s.stamps.Store(txnID, stamp)
	}
	return s.wal.Append(&record{Kind: kindCommit, Epoch: s.epoch, TxnID: txnID, Stamp: stamp, Writes: writes})
}

// WaitDurable implements stmapi.CommitSink: the group-commit barrier.
func (s *Store) WaitDurable(seq uint64) error { return s.wal.Wait(seq) }

// TakeStamp pops and returns the commit stamp recorded for txnID (requires
// Options.TrackStamps). ok is false for unknown or aborted transactions.
func (s *Store) TakeStamp(txnID uint64) (uint64, bool) {
	v, ok := s.stamps.LoadAndDelete(txnID)
	if !ok {
		return 0, false
	}
	return v.(uint64), true
}

// Checkpoint writes a consistent heap snapshot and prunes WAL segments it
// covers. Multi-version runtimes checkpoint live (rotate → drain the commit
// gate → tick the clock → snapshot-read the heap on the zero-abort read-only
// path); single-version runtimes stop the world briefly (block new Atomics,
// rotate, copy the heap).
func (s *Store) Checkpoint() error {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()

	var stamp uint64
	var newSeg int
	var objs []objImage
	if lc, ok := s.rt.(liveCheckpointer); ok {
		seg, err := s.wal.rotate()
		if err != nil {
			return err
		}
		newSeg = seg
		// Every commit that appended to a pre-rotation segment entered the
		// gate before rotate returned; once the gate drains, their versions
		// are installed, so a snapshot taken now covers all of them.
		if !lc.DrainCommitters(s.drainTimeout) {
			s.ckSkips.Add(1)
			return errDrainTimeout
		}
		s.heap.Clock().Tick()
		stamp = s.heap.Clock().Load()
		read := s.rt.Atomic
		if ror, ok := s.rt.(readOnlyRunner); ok {
			read = ror.AtomicRead // mvstm's zero-abort snapshot path
		}
		if err := read(func(tx stmapi.Txn) error {
			objs = s.readHeap(objs[:0], tx)
			return nil
		}); err != nil {
			return err
		}
	} else {
		s.gate.Lock()
		seg, err := s.wal.rotate()
		if err != nil {
			s.gate.Unlock()
			return err
		}
		newSeg = seg
		stamp = s.heap.Clock().Load()
		objs = s.readHeap(nil, nil)
		s.gate.Unlock()
	}

	snap := &snapshot{Epoch: s.epoch, Stamp: stamp, SegIndex: newSeg, Objs: objs}
	if err := writeSnapshot(s.fs, s.dir, s.inj, snap); err != nil {
		return err
	}
	s.snapshots.Add(1)
	s.lastSnapNs.Store(time.Now().UnixNano())
	s.prune(newSeg)
	return nil
}

// readHeap copies every object's slots into dst. With tx nil it reads the
// raw heap (only safe stop-the-world); otherwise it reads transactionally —
// on the multi-version runtime that is a consistent snapshot at the
// transaction's read version, taken without blocking writers.
func (s *Store) readHeap(dst []objImage, tx stmapi.Txn) []objImage {
	n := s.heap.Len()
	for i := 1; i <= n; i++ {
		o := s.heap.Get(objmodel.Ref(i))
		vals := make([]uint64, len(o.Slots)) //stmvet:ignore nakedaccess -- slot count only; gate held exclusively in the nil-tx path
		for j := range vals {
			if tx != nil {
				vals[j] = tx.Read(o, j)
			} else {
				vals[j] = o.LoadSlot(j) //stmvet:ignore nakedaccess -- stop-the-world copy: Checkpoint holds the store gate, no txn is running
			}
		}
		dst = append(dst, objImage{Ref: o.Ref(), Vals: vals})
	}
	return dst
}

// prune removes WAL segments fully covered by the newest snapshot (index <
// keepFrom) and snapshots older than it. Best-effort: a failed remove only
// costs disk.
func (s *Store) prune(keepFrom int) {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	removed := false
	for _, name := range names {
		if seg, ok := parseSegName(name); ok && seg < keepFrom {
			if s.fs.Remove(filepath.Join(s.dir, name)) == nil {
				removed = true
			}
		}
		if seg, stamp, ok := parseSnapName(name); ok && (seg < keepFrom || (seg == keepFrom && stamp < s.newestSnapStamp(keepFrom, names))) {
			if s.fs.Remove(filepath.Join(s.dir, name)) == nil {
				removed = true
			}
		}
	}
	if removed {
		s.fs.SyncDir(s.dir)
	}
}

// newestSnapStamp returns the highest snapshot stamp at segment index seg.
func (s *Store) newestSnapStamp(seg int, names []string) uint64 {
	best := uint64(0)
	for _, name := range names {
		if g, stamp, ok := parseSnapName(name); ok && g == seg && stamp > best {
			best = stamp
		}
	}
	return best
}

func (s *Store) checkpointLoop(every time.Duration) {
	defer close(s.ckDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.ckStop:
			return
		case <-t.C:
			s.Checkpoint()
		}
	}
}

// Durability snapshots the store's counters.
func (s *Store) Durability() DurabilitySnapshot {
	d := DurabilitySnapshot{
		Epoch:            s.epoch,
		WALAppends:       s.wal.appends.Load(),
		Fsyncs:           s.wal.fsyncs.Load(),
		GroupCommitBatch: s.wal.batchMax.Load(),
		Rotations:        s.wal.rotates.Load(),
		Snapshots:        s.snapshots.Load(),
		RecoveryReplays:  int64(s.recovery.Records),
		CheckpointSkips:  s.ckSkips.Load(),
	}
	if n := s.wal.batchN.Load(); n > 0 {
		d.GroupCommitMean = float64(s.wal.batchSum.Load()) / float64(n)
	}
	if ns := s.lastSnapNs.Load(); ns > 0 {
		d.SnapshotAgeNs = time.Now().UnixNano() - ns
	}
	return d
}

// Close shuts the store down cleanly: detach the sink, stop the
// checkpointer, flush and close the WAL.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if drt, ok := s.rt.(stmapi.DurableRuntime); ok {
		drt.SetCommitSink(nil)
	}
	if s.ckStop != nil {
		close(s.ckStop)
		<-s.ckDone
	}
	return s.wal.Close(true)
}

// Abandon drops the store without flushing — the in-process crash
// simulation used with vfs.FaultFS: stop background goroutines, leave
// unflushed state to die with the FS's Crash.
func (s *Store) Abandon() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if drt, ok := s.rt.(stmapi.DurableRuntime); ok {
		drt.SetCommitSink(nil)
	}
	if s.ckStop != nil {
		close(s.ckStop)
		<-s.ckDone
	}
	s.wal.Close(false)
}
