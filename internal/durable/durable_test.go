package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/vfs"

	_ "repro/internal/lazystm"
	_ "repro/internal/mvstm"
	_ "repro/internal/stm"
)

func TestRecordRoundTrip(t *testing.T) {
	in := record{
		Kind: kindCommit, Epoch: 3, TxnID: 42, Stamp: 97,
		Writes: []stmapi.RedoWrite{{Ref: 1, Slot: 0, Val: 11}, {Ref: 2, Slot: 5, Val: ^uint64(0)}},
	}
	buf := appendRecord(nil, &in)
	buf = appendRecord(buf, &record{Kind: kindEpoch, Epoch: 4})

	out, n, err := decodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Epoch != in.Epoch || out.TxnID != in.TxnID || out.Stamp != in.Stamp || len(out.Writes) != 2 {
		t.Fatalf("round trip: %+v", out)
	}
	if out.Writes[1] != in.Writes[1] {
		t.Fatalf("write round trip: %+v", out.Writes[1])
	}
	ep, m, err := decodeRecord(buf[n:])
	if err != nil || ep.Kind != kindEpoch || ep.Epoch != 4 {
		t.Fatalf("epoch record: %+v %v", ep, err)
	}

	// Every truncation of a record is a torn tail, not corruption.
	for cut := 1; cut < m; cut++ {
		if _, _, err := decodeRecord(buf[n : n+m-cut]); err != errShortRecord {
			t.Fatalf("cut %d: err = %v, want errShortRecord", cut, err)
		}
	}
	// A flipped payload bit is corruption.
	bad := append([]byte(nil), buf[:n]...)
	bad[recordHeaderLen+3] ^= 1
	if _, _, err := decodeRecord(bad); err == nil {
		t.Fatal("bit flip not detected")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := &snapshot{
		Epoch: 2, Stamp: 55, SegIndex: 3,
		Objs: []objImage{{Ref: 1, Vals: []uint64{9, 8}}, {Ref: 2, Vals: []uint64{7}}},
	}
	out, err := decodeSnapshot(encodeSnapshot(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 2 || out.Stamp != 55 || out.SegIndex != 3 || len(out.Objs) != 2 || out.Objs[0].Vals[1] != 8 {
		t.Fatalf("round trip: %+v", out)
	}
	seg, stamp, ok := parseSnapName(snapName(3, 55))
	if !ok || seg != 3 || stamp != 55 {
		t.Fatalf("name round trip: %d %d %v", seg, stamp, ok)
	}
}

// TestWALGroupCommit drives concurrent appenders through one wal and checks
// that every record survives in order and that fsyncs were batched.
func TestWALGroupCommit(t *testing.T) {
	fs := NewTestFS()
	w, err := openWAL(fs, "/d", 1, 200*time.Microsecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	const G, N = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				seq, err := w.Append(&record{Kind: kindCommit, Epoch: 1, TxnID: uint64(g*N + i), Stamp: 1})
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Wait(seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(true); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/d/" + segName(1))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for off := 0; off < len(data); {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			t.Fatalf("record %d: %v", count, err)
		}
		off += n
		count++
	}
	if count != G*N {
		t.Fatalf("replayed %d records, appended %d", count, G*N)
	}
	fsyncs := w.fsyncs.Load()
	if fsyncs == 0 || fsyncs >= int64(G*N) {
		t.Fatalf("fsyncs = %d for %d acked appends — group commit not batching", fsyncs, G*N)
	}
	if w.batchMax.Load() < 2 {
		t.Fatalf("max batch %d, want >= 2", w.batchMax.Load())
	}
}

// NewTestFS returns the honest in-memory FS.
func NewTestFS() *vfs.FaultFS { return vfs.NewFaultFS(1, vfs.Mode{}) }

// The canonical test heap: one 8-account array, 100 units each.
const bankAccounts = 8
const bankInit = 100

func openBank(t *testing.T, fs vfs.FS, dir, runtime string, opts func(*Options)) (*Store, *objmodel.Object) {
	t.Helper()
	var arr *objmodel.Object
	o := Options{Dir: dir, FS: fs, Runtime: runtime, TrackStamps: true}
	if opts != nil {
		opts(&o)
	}
	s, err := Open(o, func(h *objmodel.Heap) error {
		arr = h.NewArray(bankAccounts, false)
		for i := 0; i < bankAccounts; i++ {
			arr.StoreSlot(i, bankInit)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", runtime, err)
	}
	return s, arr
}

func bankSum(arr *objmodel.Object) (sum uint64) {
	for i := 0; i < bankAccounts; i++ {
		sum += arr.LoadSlot(i)
	}
	return sum
}

func transfer(s *Store, arr *objmodel.Object, from, to int) (txnID uint64, err error) {
	err = s.Atomic(func(tx stmapi.Txn) error {
		txnID = tx.ID()
		a := tx.Read(arr, from)
		b := tx.Read(arr, to)
		tx.Write(arr, from, a-1)
		tx.Write(arr, to, b+1)
		return nil
	})
	return txnID, err
}

// TestStoreCrashRecovery runs acked transfers on each runtime, crashes the
// in-memory disk, reopens, and checks conservation plus that every acked
// commit was recovered.
func TestStoreCrashRecovery(t *testing.T) {
	for _, rt := range []string{"eager", "lazy", "mvstm"} {
		t.Run(rt, func(t *testing.T) {
			fs := NewTestFS()
			s, arr := openBank(t, fs, "/d", rt, nil)
			type ack struct{ epoch, id, stamp uint64 }
			var acks []ack
			for i := 0; i < 40; i++ {
				id, err := transfer(s, arr, i%bankAccounts, (i+3)%bankAccounts)
				if err != nil {
					t.Fatal(err)
				}
				stamp, ok := s.TakeStamp(id)
				if !ok {
					t.Fatalf("txn %d committed without a stamp", id)
				}
				acks = append(acks, ack{s.Epoch(), id, stamp})
			}
			prevEpoch := s.Epoch()
			s.Abandon()
			fs.Crash()

			s2, arr2 := openBank(t, fs, "/d", rt, func(o *Options) { o.NoOpenCheckpoint = true })
			defer s2.Close()
			if got := bankSum(arr2); got != bankAccounts*bankInit {
				t.Fatalf("sum after recovery = %d, want %d", got, bankAccounts*bankInit)
			}
			if s2.Epoch() != prevEpoch+1 {
				t.Fatalf("epoch = %d, want %d", s2.Epoch(), prevEpoch+1)
			}
			info := s2.Recovery()
			replayed := make(map[[2]uint64]bool)
			for _, txn := range info.Txns {
				replayed[[2]uint64{txn.Epoch, txn.TxnID}] = true
			}
			for _, a := range acks {
				if a.stamp <= info.SnapshotStamp {
					continue // inside the snapshot image
				}
				if !replayed[[2]uint64{a.epoch, a.id}] {
					t.Fatalf("acked commit (epoch %d, txn %d, stamp %d) lost: snapshotStamp %d, %d replayed",
						a.epoch, a.id, a.stamp, info.SnapshotStamp, len(info.Txns))
				}
			}
			if info.MaxStamp < acks[len(acks)-1].stamp {
				t.Fatalf("MaxStamp %d < last acked stamp %d", info.MaxStamp, acks[len(acks)-1].stamp)
			}
		})
	}
}

// TestRecoveryReplaysWALTail is the pinned seeded test required by the
// acceptance criteria: with open-time checkpoints disabled, every commit
// lives only in the WAL tail, and recovery must replay a non-empty tail.
func TestRecoveryReplaysWALTail(t *testing.T) {
	fs := vfs.NewFaultFS(42, vfs.Mode{})
	s, arr := openBank(t, fs, "/d", "eager", func(o *Options) { o.NoOpenCheckpoint = true })
	const txns = 17
	for i := 0; i < txns; i++ {
		if _, err := transfer(s, arr, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon()
	fs.Crash()

	s2, arr2 := openBank(t, fs, "/d", "eager", func(o *Options) { o.NoOpenCheckpoint = true })
	defer s2.Close()
	info := s2.Recovery()
	if info.Records == 0 || len(info.Txns) != txns {
		t.Fatalf("replayed %d records, %d txns; want a non-empty tail with %d txns", info.Records, len(info.Txns), txns)
	}
	if info.SnapshotStamp != 0 {
		t.Fatalf("unexpected snapshot (stamp %d) — tail replay not exercised", info.SnapshotStamp)
	}
	if got := arr2.LoadSlot(0); got != bankInit-txns {
		t.Fatalf("slot 0 = %d, want %d", got, bankInit-txns)
	}
	if got := arr2.LoadSlot(1); got != bankInit+txns {
		t.Fatalf("slot 1 = %d, want %d", got, bankInit+txns)
	}
	if s2.Durability().RecoveryReplays == 0 {
		t.Fatal("RecoveryReplays counter not populated")
	}
}

// TestFsyncLieLosesAckedCommits proves the store can DETECT a lying disk:
// under Mode.FsyncLie acked commits vanish on crash, which the recovery
// invariants (checked here directly, and by the harness in
// internal/durability) flag as a breach.
func TestFsyncLieLosesAckedCommits(t *testing.T) {
	fs := vfs.NewFaultFS(7, vfs.Mode{FsyncLie: true})
	s, arr := openBank(t, fs, "/d", "eager", func(o *Options) { o.NoOpenCheckpoint = true })
	var lastStamp uint64
	for i := 0; i < 10; i++ {
		id, err := transfer(s, arr, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st, ok := s.TakeStamp(id); ok {
			lastStamp = st
		}
	}
	s.Abandon()
	fs.Crash()

	s2, _ := openBank(t, fs, "/d", "eager", func(o *Options) { o.NoOpenCheckpoint = true })
	defer s2.Close()
	info := s2.Recovery()
	if info.MaxStamp >= lastStamp {
		t.Fatalf("acked stamp %d survived a lying fsync (MaxStamp %d) — breach not observable", lastStamp, info.MaxStamp)
	}
}

// TestTornTailEndsReplay corrupts the tail of the live segment the way a
// torn sector write would and checks recovery stops cleanly at the tear.
func TestTornTailEndsReplay(t *testing.T) {
	fs := NewTestFS()
	s, arr := openBank(t, fs, "/d", "lazy", func(o *Options) { o.NoOpenCheckpoint = true })
	for i := 0; i < 5; i++ {
		if _, err := transfer(s, arr, 2, 3); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon()
	fs.Crash()

	// Tear the last record: truncate the newest segment mid-record.
	segs, err := listSegments(fs, "/d")
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := filepath.Join("/d", segName(segs[len(segs)-1]))
	data, err := fs.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]
	f, err := fs.OpenFile(last, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	s2, arr2 := openBank(t, fs, "/d", "lazy", func(o *Options) { o.NoOpenCheckpoint = true })
	defer s2.Close()
	info := s2.Recovery()
	if !info.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(info.Txns) != 4 {
		t.Fatalf("replayed %d txns past a tear after 5 commits, want 4", len(info.Txns))
	}
	if got := bankSum(arr2); got != bankAccounts*bankInit {
		t.Fatalf("sum = %d after torn-tail recovery", got)
	}
}

// TestCheckpointCoversAndPrunes checkpoints mid-stream and checks pruning
// plus recovery from snapshot + shorter tail, on both checkpoint paths
// (stop-the-world for eager, live drain for mvstm).
func TestCheckpointCoversAndPrunes(t *testing.T) {
	for _, rt := range []string{"eager", "mvstm"} {
		t.Run(rt, func(t *testing.T) {
			fs := NewTestFS()
			s, arr := openBank(t, fs, "/d", rt, func(o *Options) { o.NoOpenCheckpoint = true })
			for i := 0; i < 10; i++ {
				if _, err := transfer(s, arr, 0, 4); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			for i := 0; i < 6; i++ {
				if _, err := transfer(s, arr, 1, 5); err != nil {
					t.Fatal(err)
				}
			}
			segs, _ := listSegments(fs, "/d")
			if len(segs) != 1 {
				t.Fatalf("segments after checkpoint = %v, want just the live one", segs)
			}
			d := s.Durability()
			if d.Snapshots != 1 || d.Rotations != 1 {
				t.Fatalf("snapshots=%d rotations=%d", d.Snapshots, d.Rotations)
			}
			s.Abandon()
			fs.Crash()

			s2, arr2 := openBank(t, fs, "/d", rt, func(o *Options) { o.NoOpenCheckpoint = true })
			defer s2.Close()
			info := s2.Recovery()
			if info.SnapshotStamp == 0 {
				t.Fatal("no snapshot used in recovery")
			}
			if len(info.Txns) != 6 {
				t.Fatalf("replayed %d txns, want only the 6 post-checkpoint ones", len(info.Txns))
			}
			if got := arr2.LoadSlot(4); got != bankInit+10 {
				t.Fatalf("slot 4 = %d, want %d (snapshot content)", got, bankInit+10)
			}
			if got := arr2.LoadSlot(5); got != bankInit+6 {
				t.Fatalf("slot 5 = %d, want %d (tail content)", got, bankInit+6)
			}
		})
	}
}

// TestLiveCheckpointUnderLoad checkpoints mvstm repeatedly while writers
// run, then crash-recovers and checks conservation — the drain barrier must
// never capture a half-installed commit.
func TestLiveCheckpointUnderLoad(t *testing.T) {
	fs := NewTestFS()
	s, arr := openBank(t, fs, "/d", "mvstm", nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := transfer(s, arr, (g+i)%bankAccounts, (g+i+1)%bankAccounts); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		if err := s.Checkpoint(); err != nil && err != errDrainTimeout {
			t.Errorf("checkpoint %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	s.Abandon()
	fs.Crash()

	s2, arr2 := openBank(t, fs, "/d", "mvstm", func(o *Options) { o.NoOpenCheckpoint = true })
	defer s2.Close()
	if got := bankSum(arr2); got != bankAccounts*bankInit {
		t.Fatalf("sum = %d after live-checkpoint crash recovery, want %d", got, bankAccounts*bankInit)
	}
}

// TestOSFSStore runs the store end-to-end on the real file system.
func TestOSFSStore(t *testing.T) {
	dir := t.TempDir()
	s, arr := openBank(t, vfs.OS{}, dir, "eager", nil)
	for i := 0; i < 8; i++ {
		if _, err := transfer(s, arr, 0, 7); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, arr2 := openBank(t, vfs.OS{}, dir, "eager", func(o *Options) { o.NoOpenCheckpoint = true })
	defer s2.Close()
	if got := arr2.LoadSlot(7); got != bankInit+8 {
		t.Fatalf("slot 7 = %d, want %d", got, bankInit+8)
	}
}

// TestNonDeterministicSetupRejected: recovered images referencing objects
// the setup did not create must fail loudly, not corrupt silently.
func TestNonDeterministicSetupRejected(t *testing.T) {
	fs := NewTestFS()
	s, arr := openBank(t, fs, "/d", "eager", func(o *Options) { o.NoOpenCheckpoint = true })
	if _, err := transfer(s, arr, 0, 1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	_, err := Open(Options{Dir: "/d", FS: fs, Runtime: "eager", NoOpenCheckpoint: true},
		func(h *objmodel.Heap) error { return nil }) // empty heap: refs now dangle
	if err == nil {
		t.Fatal("recovery into a mismatched heap succeeded")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("setup")) {
		t.Fatalf("error %q does not point at setup determinism", err)
	}
}

// TestEpochsMonotone: every open stamps a fresh epoch, strictly increasing
// across crashes and clean closes alike.
func TestEpochsMonotone(t *testing.T) {
	fs := NewTestFS()
	var last uint64
	for i := 0; i < 4; i++ {
		s, arr := openBank(t, fs, "/d", "lazy", nil)
		if _, err := transfer(s, arr, 0, 1); err != nil {
			t.Fatal(err)
		}
		if s.Epoch() <= last {
			t.Fatalf("open %d: epoch %d not above %d", i, s.Epoch(), last)
		}
		last = s.Epoch()
		if i%2 == 0 {
			s.Close()
		} else {
			s.Abandon()
			fs.Crash()
		}
	}
}
