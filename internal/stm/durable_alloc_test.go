package stm

// The durable commit-sink hook must be free when disabled: a runtime that
// never had a sink — and one whose sink was removed again — commits with
// zero heap allocations, exactly like the pre-durability runtime.

import (
	"testing"

	"repro/internal/stmapi"
)

// countSink counts appends; Wait is immediate (no real WAL underneath).
type countSink struct{ appends int }

func (c *countSink) AppendRedo(txnID, stamp uint64, writes []stmapi.RedoWrite) (uint64, error) {
	c.appends++
	return uint64(c.appends), nil
}

func (c *countSink) WaitDurable(seq uint64) error { return nil }

// TestDisabledSinkAllocFree pins the sink hook's disabled path: with no
// commit sink installed — including after one was installed and removed —
// a committed read-write transaction performs zero heap allocations.
func TestDisabledSinkAllocFree(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	body := func(tx *Txn) error {
		tx.Write(o, 0, tx.Read(o, 0)+1)
		return nil
	}
	measure := func() float64 {
		for i := 0; i < 10; i++ { // warm the descriptor pool
			if err := f.rt.Atomic(nil, body); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(200, func() {
			if err := f.rt.Atomic(nil, body); err != nil {
				t.Fatal(err)
			}
		})
	}
	if avg := measure(); avg != 0 {
		t.Errorf("never-sinked transaction allocates %.1f objects, want 0", avg)
	}

	// Install a sink, run through it, then remove it: pooled descriptors
	// that carried redo scratch must come back allocation-free.
	sink := &countSink{}
	f.rt.SetCommitSink(sink)
	for i := 0; i < 20; i++ {
		if err := f.rt.Atomic(nil, body); err != nil {
			t.Fatal(err)
		}
	}
	if sink.appends == 0 {
		t.Fatal("sink never saw a redo append while installed")
	}
	f.rt.SetCommitSink(nil)
	if avg := measure(); avg != 0 {
		t.Errorf("de-sinked transaction allocates %.1f objects, want 0", avg)
	}
}
