package stm

// Contention-policy integration tests: the wait/self-abort/abort-other
// decisions wired through conflictWait, and the starvation litmus the PR's
// acceptance criterion names — a deterministic deadlock (skewed write-heavy:
// two transactions hammer the same two hot objects in opposite orders) that
// the default backoff policy can never resolve, while the arbitrating
// policies commit every transaction.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

func TestPoliciesResolveDeadlockWhereBackoffStarves(t *testing.T) {
	t.Run("backoff", func(t *testing.T) {
		e1, e2, _ := runOpposedWriters(t, "backoff", 500*time.Millisecond)
		// Backoff has no arbitration: the cross-held records deadlock until
		// the context expires. (The moment one writer gives up and releases,
		// the survivor commits — so exactly one starves, rescued only by the
		// other's cancellation.) This is the starvation the policies fix.
		if !errors.Is(e1, context.DeadlineExceeded) && !errors.Is(e2, context.DeadlineExceeded) {
			t.Fatalf("backoff should starve at least one writer; errs = %v, %v", e1, e2)
		}
		t.Logf("backoff starved as expected: errs = %v, %v", e1, e2)
	})
	for _, policy := range []string{"timestamp", "karma"} {
		t.Run(policy, func(t *testing.T) {
			e1, e2, s := runOpposedWriters(t, policy, 30*time.Second)
			if e1 != nil || e2 != nil {
				t.Fatalf("%s must commit every transaction; errs = %v, %v", policy, e1, e2)
			}
			if s.SelfAborts+s.DoomsIssued == 0 {
				t.Fatalf("%s resolved the deadlock without arbitrating (self-aborts=%d dooms=%d)",
					policy, s.SelfAborts, s.DoomsIssued)
			}
			t.Logf("%s: self-aborts=%d dooms=%d", policy, s.SelfAborts, s.DoomsIssued)
		})
	}
}

// runOpposedWriters builds the deterministic deadlock: T1 (older) acquires A
// and then wants B; T2 (younger, begun strictly after T1) acquires B and then
// wants A. Channel handshakes guarantee the cross-hold forms before either
// blocks. SelfAbortAfter is effectively disabled so the built-in restart
// threshold cannot rescue the backoff run.
func runOpposedWriters(t *testing.T, policy string, deadline time.Duration) (e1, e2 error, s StatsSnapshot) {
	t.Helper()
	pol, err := conflict.ByName(policy)
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{
		Handler:        pol,
		SelfAbortAfter: 1 << 30,
	}})
	a, b := f.newCell(), f.newCell()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	t1Began := make(chan struct{})
	t1HoldsA := make(chan struct{})
	t2HoldsB := make(chan struct{})
	var onceBegan, onceA, onceB sync.Once
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e1 = f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
			onceBegan.Do(func() { close(t1Began) })
			tx.Write(a, 0, 1)
			onceA.Do(func() { close(t1HoldsA) })
			<-t2HoldsB
			tx.Write(b, 0, 1)
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		<-t1Began // T2 begins after T1: strictly younger under age policies
		e2 = f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
			tx.Write(b, 0, 2)
			onceB.Do(func() { close(t2HoldsB) })
			<-t1HoldsA
			tx.Write(a, 0, 2)
			return nil
		})
	}()
	wg.Wait()

	if e1 == nil && e2 == nil {
		// Both committed: serializability demands the final state is one
		// writer's complete update, never an interleaving.
		va, vb := a.LoadSlot(0), b.LoadSlot(0)
		if va != vb || va == 0 {
			t.Fatalf("final state a=%d b=%d is not a serial outcome", va, vb)
		}
	}
	return e1, e2, f.rt.Stats.Snapshot()
}

func TestPoliciesPreserveInvariantsUnderContention(t *testing.T) {
	for _, policy := range conflict.PolicyNames {
		t.Run(policy, func(t *testing.T) {
			pol, err := conflict.ByName(policy)
			if err != nil {
				t.Fatal(err)
			}
			f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Handler: pol}})
			const accounts, balance = 4, 1000 // few accounts: heavy contention
			objs := make([]*objmodel.Object, accounts)
			for i := range objs {
				objs[i] = f.newCell()
				objs[i].StoreSlot(0, balance)
			}
			runTransfers(t, f, objs, 4, 400)
			var sum uint64
			for _, o := range objs {
				sum += o.LoadSlot(0)
			}
			if sum != accounts*balance {
				t.Fatalf("total balance %d, want %d", sum, accounts*balance)
			}
			s := f.rt.Stats.Snapshot()
			if s.Commits == 0 {
				t.Fatalf("no commits recorded")
			}
			t.Logf("%s: starts=%d commits=%d aborts=%d self-aborts=%d dooms=%d",
				policy, s.Starts, s.Commits, s.Aborts, s.SelfAborts, s.DoomsIssued)
		})
	}
}

func TestDoomedVictimRestartsAndBothCommit(t *testing.T) {
	// Direct abort-other wiring check: an older transaction dooms the owner
	// of the record it needs; the victim notices at its next access, aborts
	// (releasing the record), and both eventually commit.
	pol, err := conflict.ByName("timestamp")
	if err != nil {
		t.Fatal(err)
	}
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Handler: pol}})
	o := f.newCell()

	elderBegan := make(chan struct{})
	youngHolds := make(chan struct{})
	var onceBegan, onceHolds sync.Once
	victimAttempts := 0
	var wg sync.WaitGroup
	wg.Add(2)
	var elderErr, youngErr error
	go func() {
		defer wg.Done()
		elderErr = f.rt.Atomic(nil, func(tx *Txn) error {
			onceBegan.Do(func() { close(elderBegan) })
			<-youngHolds
			tx.Write(o, 0, 1) // conflicts with the younger owner: dooms it
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		<-elderBegan
		youngErr = f.rt.Atomic(nil, func(tx *Txn) error {
			victimAttempts++
			tx.Write(o, 1, 2)
			onceHolds.Do(func() { close(youngHolds) })
			if tx.Attempt() == 0 {
				// Poll until the doom lands: each access is a doom check.
				for i := 0; i < 10_000; i++ {
					time.Sleep(100 * time.Microsecond)
					_ = tx.Read(o, 1)
				}
			}
			return nil // attempt 0 reaches this only if the doom never arrived
		})
	}()
	wg.Wait()

	if elderErr != nil || youngErr != nil {
		t.Fatalf("errs: elder=%v young=%v", elderErr, youngErr)
	}
	if victimAttempts < 2 {
		t.Fatalf("victim ran %d attempt(s); expected a doom-induced restart", victimAttempts)
	}
	s := f.rt.Stats.Snapshot()
	if s.DoomsIssued == 0 {
		t.Fatalf("no dooms recorded")
	}
	if got := o.LoadSlot(0); got != 1 {
		t.Fatalf("slot 0 = %d, want 1", got)
	}
	if got := o.LoadSlot(1); got != 2 {
		t.Fatalf("slot 1 = %d, want 2", got)
	}
}
