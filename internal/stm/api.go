package stm

import (
	"context"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

// API returns the runtime-agnostic driver view of rt. The adapter is a
// value wrapper: Atomic/AtomicCtx re-wrap the body in a concrete-typed
// closure that does not escape, so driving the runtime through stmapi keeps
// the zero-allocation steady state of calling it directly.
func (rt *Runtime) API() stmapi.Runtime { return apiRuntime{rt} }

type apiRuntime struct{ rt *Runtime }

func (a apiRuntime) Name() string         { return "eager" }
func (a apiRuntime) Heap() *objmodel.Heap { return a.rt.Heap }
func (a apiRuntime) Stats() stmapi.StatsSnapshot {
	return a.rt.Stats.Snapshot()
}

func (a apiRuntime) Atomic(body func(stmapi.Txn) error) error {
	return a.rt.Atomic(nil, func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) AtomicCtx(ctx context.Context, body func(stmapi.Txn) error) error {
	return a.rt.AtomicCtx(ctx, nil, func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) AtomicIrrevocable(body func(stmapi.Txn) error) error {
	return a.rt.AtomicIrrevocable(nil, func(tx *Txn) error { return body(tx) })
}

func (a apiRuntime) SetTracer(t *trace.Tracer) { a.rt.SetTracer(t) }
func (a apiRuntime) Tracer() *trace.Tracer     { return a.rt.Tracer() }
func (a apiRuntime) ActiveTransactions() int   { return a.rt.ActiveTransactions() }

// SetInjector and Recovery forward the fault-injection and reaper surfaces
// through the adapter; drivers probe for them with small capability
// interfaces rather than depending on the concrete runtime.
func (a apiRuntime) SetInjector(in *faultinject.Injector) { a.rt.SetInjector(in) }
func (a apiRuntime) Recovery() recovery.Target            { return a.rt.Recovery() }

// SetCommitSink forwards the durable-store redo stream hook
// (stmapi.DurableRuntime) through the adapter.
func (a apiRuntime) SetCommitSink(s stmapi.CommitSink) { a.rt.SetCommitSink(s) }

func init() {
	stmapi.Register("eager", func(heap *objmodel.Heap, cfg stmapi.CommonConfig) (stmapi.Runtime, error) {
		if err := cfg.Normalize(); err != nil {
			return nil, err
		}
		return New(heap, Config{CommonConfig: cfg}).API(), nil
	})
}
