package stm

import (
	"sync"
	"testing"

	"repro/internal/conflict"
	"repro/internal/stmapi"
)

// TestClockFastpathUncontended pins the TL2 hot path: with no concurrent
// committers, every commit validates with the single clock compare, every
// writing commit advances the clock exactly once, and the read-set walk
// never runs.
func TestClockFastpathUncontended(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	const n = 100
	for i := 0; i < n; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.rt.Stats.ClockAdvances.Load(); got != n {
		t.Errorf("clock advances = %d, want %d", got, n)
	}
	if got := f.rt.Stats.FastpathValidations.Load(); got != n {
		t.Errorf("fastpath validations = %d, want %d", got, n)
	}
	if got := f.rt.Stats.FallbackWalks.Load(); got != 0 {
		t.Errorf("fallback walks = %d, want 0", got)
	}

	// Read-only commits never advance the clock.
	for i := 0; i < 5; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			_ = tx.Read(o, 0)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.rt.Stats.ClockAdvances.Load(); got != n {
		t.Errorf("clock advances after read-only txns = %d, want %d", got, n)
	}
}

// TestClockSnapshotExtends: reading an object whose version is above the
// begin-time snapshot triggers a snapshot extension (one read-set walk); if
// the rest of the read set is still consistent the transaction continues
// rather than restarting.
func TestClockSnapshotExtends(t *testing.T) {
	f := newFixture(t, Config{})
	o1, o2 := f.newCell(), f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		_ = tx.Read(o1, 0)
		if runs == 1 {
			// An independent transaction commits to o2, pushing its version
			// past the outer transaction's snapshot.
			if err := f.rt.Atomic(nil, func(in *Txn) error {
				in.Write(o2, 0, 7)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		got := tx.Read(o2, 0)
		tx.Write(o1, 1, got)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("runs = %d, want 1 (extension should not restart)", runs)
	}
	if got := o1.LoadSlot(1); got != 7 {
		t.Errorf("o1 slot1 = %d, want 7", got)
	}
	if got := f.rt.Stats.FallbackWalks.Load(); got != 1 {
		t.Errorf("fallback walks = %d, want exactly 1 (the extension)", got)
	}
}

// TestClockSnapshotExtensionFails: if the read set already went stale, the
// extension's walk fails and the transaction restarts with a consistent
// snapshot.
func TestClockSnapshotExtensionFails(t *testing.T) {
	f := newFixture(t, Config{})
	o1, o2 := f.newCell(), f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		v1 := tx.Read(o1, 0)
		if runs == 1 {
			// The independent transaction overwrites o1 (already in the outer
			// read set) as well as o2.
			if err := f.rt.Atomic(nil, func(in *Txn) error {
				in.Write(o1, 0, 5)
				in.Write(o2, 0, 6)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		v2 := tx.Read(o2, 0)
		tx.Write(o1, 1, v1+v2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (stale read set must restart)", runs)
	}
	if got := o1.LoadSlot(1); got != 11 {
		t.Errorf("o1 slot1 = %d, want 11 (5+6 from the consistent re-run)", got)
	}
	if got := f.rt.Stats.Aborts.Load(); got != 1 {
		t.Errorf("aborts = %d, want 1", got)
	}
}

// TestValidationEnvWalk: STM_VALIDATION=walk disables the clock at runtime
// construction — every validation is a full read-set walk and the clock
// never advances.
func TestValidationEnvWalk(t *testing.T) {
	t.Setenv(stmapi.ValidationEnv, "walk")
	f := newFixture(t, Config{})
	o := f.newCell()
	const n = 10
	for i := 0; i < n; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.rt.Stats.FastpathValidations.Load(); got != 0 {
		t.Errorf("fastpath validations = %d, want 0 in walk mode", got)
	}
	if got := f.rt.Stats.FallbackWalks.Load(); got != n {
		t.Errorf("fallback walks = %d, want %d", got, n)
	}
	if got := f.rt.Stats.ClockAdvances.Load(); got != 0 {
		t.Errorf("clock advances = %d, want 0 in walk mode", got)
	}
}

// TestValidationEnvInvalid: an unrecognized STM_VALIDATION value is a
// configuration error rejected at construction.
func TestValidationEnvInvalid(t *testing.T) {
	t.Setenv(stmapi.ValidationEnv, "bogus")
	defer func() {
		if recover() == nil {
			t.Fatal("New with STM_VALIDATION=bogus did not panic")
		}
	}()
	newFixture(t, Config{})
}

// staleObsPolicy is a contention handler that also records validation-abort
// notifications (conflict.StaleObserver).
type staleObsPolicy struct {
	conflict.Backoff
	mu    sync.Mutex
	infos []conflict.Info
}

func (p *staleObsPolicy) ObserveValidationAbort(in conflict.Info) {
	p.mu.Lock()
	p.infos = append(p.infos, in)
	p.mu.Unlock()
}

// TestStaleObserverNotified: a commit-time validation failure reports the
// stale object to a policy implementing StaleObserver, with Kind
// TxnValidation and the object's handle.
func TestStaleObserverNotified(t *testing.T) {
	pol := &staleObsPolicy{}
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Handler: pol}})
	o1, o2 := f.newCell(), f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		_ = tx.Read(o1, 0)
		if runs == 1 {
			// NT barrier shape: the read-set entry goes stale after the read,
			// with no further contact before commit.
			if _, ok := o1.Rec.AcquireAnon(); !ok {
				t.Fatal("acquire failed")
			}
			o1.StoreSlot(0, 10)
			f.heap.Clock().Tick()
			o1.Rec.ReleaseAnon()
		}
		tx.Write(o2, 0, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
	pol.mu.Lock()
	defer pol.mu.Unlock()
	if len(pol.infos) != 1 {
		t.Fatalf("observer saw %d validation aborts, want 1", len(pol.infos))
	}
	in := pol.infos[0]
	if in.Kind != conflict.TxnValidation {
		t.Errorf("Kind = %v, want %v", in.Kind, conflict.TxnValidation)
	}
	if in.Obj != uint64(o1.Ref()) {
		t.Errorf("Obj = %d, want %d (the stale object)", in.Obj, o1.Ref())
	}
}
