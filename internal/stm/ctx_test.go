package stm

// Cancellation-edge tests for AtomicCtx: entry, mid-body, conflict waits,
// retry waits, post-commit quiescence, and nested-block inheritance.

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/stmapi"
)

func TestAtomicCtxPreCancelledSkipsBody(t *testing.T) {
	f := newFixture(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatalf("body executed under an already-cancelled context")
	}
	if s := f.rt.Stats.Snapshot(); s.Starts != 0 {
		t.Fatalf("starts = %d, want 0 (no attempt should begin)", s.Starts)
	}
}

func TestAtomicCtxNilBehavesLikeAtomic(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	if err := f.rt.AtomicCtx(nil, nil, func(tx *Txn) error {
		tx.Write(o, 0, 42)
		return nil
	}); err != nil {
		t.Fatalf("AtomicCtx(nil): %v", err)
	}
	if got := o.LoadSlot(0); got != 42 {
		t.Fatalf("slot 0 = %d, want 42", got)
	}
}

func TestAtomicCtxCancelMidBodyRollsBack(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	ctx, cancel := context.WithCancel(context.Background())
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		tx.Write(o, 0, 99)
		cancel()
		// The next cancellation point notices: force one by restarting (the
		// re-execution loop checks ctx before every attempt).
		tx.Restart()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := o.LoadSlot(0); got != 0 {
		t.Fatalf("slot 0 = %d, want 0 (write rolled back)", got)
	}
	if n := f.rt.ActiveTransactions(); n != 0 {
		t.Fatalf("active transactions = %d, want 0", n)
	}
}

func TestAtomicCtxDeadlineInConflictWait(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 1, 7)
			close(acquired)
			<-release
			return nil
		})
	}()
	<-acquired
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		tx.Write(o, 0, 1) // blocks in conflictWait on the held record
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatalf("cancellation took %v; conflict wait did not observe ctx", time.Since(start))
	}
	if got := o.LoadSlot(0); got != 0 {
		t.Fatalf("slot 0 = %d, want 0", got)
	}
	if n := f.rt.ActiveTransactions(); n != 1 { // only the parked holder
		t.Fatalf("active transactions = %d, want 1", n)
	}
}

func TestAtomicCtxDeadlineInRetryWait(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		_ = tx.Read(o, 0)
		tx.Retry() // nothing ever writes o: the wait must end via ctx
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAtomicCtxCancelDuringQuiescence(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	o := f.newCell()

	// Park a transaction that began before our commit and stays Active, so
	// the committer's quiescence wait cannot finish on its own. It touches a
	// disjoint object: quiescence waits on every overlapping-in-time
	// transaction regardless of data.
	other := f.newCell()
	inBody := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			_ = tx.Read(other, 1)
			close(inBody)
			<-release
			return nil
		})
	}()
	<-inBody
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		tx.Write(o, 0, 5)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// Past the commit point the effects are durable even though the
	// privatization wait was abandoned.
	if got := o.LoadSlot(0); got != 5 {
		t.Fatalf("slot 0 = %d, want 5 (commit is durable)", got)
	}
	if s := f.rt.Stats.Snapshot(); s.Commits != 1 {
		t.Fatalf("commits = %d, want 1", s.Commits)
	}
}

func TestNestedAtomicCtxScopedCancellation(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	var nestedErr error
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		ctx, cancel := context.WithCancel(context.Background())
		nestedErr = f.rt.AtomicCtx(ctx, tx, func(tx *Txn) error {
			tx.Write(o, 1, 2)
			cancel()
			_ = tx.Read(o, 1) // accesses are cancellation points
			return nil
		})
		// The nested cancellation is scoped: the outer body continues.
		tx.Write(o, 2, 3)
		return nil
	})
	if err != nil {
		t.Fatalf("outer Atomic: %v", err)
	}
	if !errors.Is(nestedErr, context.Canceled) {
		t.Fatalf("nested err = %v, want context.Canceled", nestedErr)
	}
	if got := o.LoadSlot(0); got != 1 {
		t.Fatalf("slot 0 = %d, want 1 (outer write kept)", got)
	}
	if got := o.LoadSlot(1); got != 0 {
		t.Fatalf("slot 1 = %d, want 0 (nested write rolled back)", got)
	}
	if got := o.LoadSlot(2); got != 3 {
		t.Fatalf("slot 2 = %d, want 3 (outer continued after nested cancel)", got)
	}
}

func TestNestedAtomicCtxNilInheritsOuterContext(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	ctx, cancel := context.WithCancel(context.Background())
	err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
		return f.rt.AtomicCtx(nil, tx, func(tx *Txn) error {
			tx.Write(o, 0, 1)
			cancel()
			_ = tx.Read(o, 0) // outer ctx governs: the whole block unwinds
			return nil
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := o.LoadSlot(0); got != 0 {
		t.Fatalf("slot 0 = %d, want 0", got)
	}
}

func TestNestedAtomicCtxOuterCancelWinsOverScope(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	outer, cancelOuter := context.WithCancel(context.Background())
	err := f.rt.AtomicCtx(outer, nil, func(tx *Txn) error {
		inner, cancelInner := context.WithCancel(context.Background())
		defer cancelInner()
		return f.rt.AtomicCtx(inner, tx, func(tx *Txn) error {
			tx.Write(o, 0, 1)
			cancelOuter()
			cancelInner()
			_ = tx.Read(o, 0)
			return nil
		})
	})
	// Both contexts are cancelled; the outer one wins and unwinds the whole
	// transaction rather than being absorbed as a nested-block error.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := o.LoadSlot(0); got != 0 {
		t.Fatalf("slot 0 = %d, want 0 (full rollback)", got)
	}
}

func TestAtomicCtxAPIAdapter(t *testing.T) {
	f := newFixture(t, Config{})
	api := f.rt.API()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := api.AtomicCtx(ctx, func(tx stmapi.Txn) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) || ran {
		t.Fatalf("api.AtomicCtx pre-cancelled: err=%v ran=%v", err, ran)
	}
	o := f.newCell()
	if err := api.AtomicCtx(context.Background(), func(tx stmapi.Txn) error {
		tx.Write(o, 0, 11)
		return nil
	}); err != nil {
		t.Fatalf("api.AtomicCtx: %v", err)
	}
	if got := o.LoadSlot(0); got != 11 {
		t.Fatalf("slot 0 = %d, want 11", got)
	}
}
