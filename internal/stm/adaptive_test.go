package stm

import (
	"sync"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

func granFixture(t testing.TB) *fixture {
	return newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
}

// seedSlot1 commits an initial value into slot1 so rollback effects on the
// neighbouring slot are observable.
func seedSlot1(t *testing.T, f *fixture, o *objmodel.Object, v uint64) {
	t.Helper()
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 1, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// granTrial runs the GLU abort-path shape against o: a transaction writes
// slot0 (at span granularity this logs undo for slot1 too), a simulated
// non-transactional store hits slot1 while the transaction owns the record,
// and the transaction restarts. Returns slot1's final value: at span
// granularity the rollback replays the stale span and clobbers the NT
// store; at slot granularity the NT store survives.
func granTrial(t *testing.T, f *fixture, o *objmodel.Object) uint64 {
	t.Helper()
	runs := 0
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		tx.Write(o, 0, 1)
		if runs == 1 {
			o.StoreSlot(1, 99)
			tx.Restart()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}
	return o.LoadSlot(1)
}

// TestSpanPoisoningAndPromotion pins both sides of the adaptive-granularity
// contract: an unpromoted object keeps the paper's span-poisoning anomaly
// (Section 2.4 — rollback granularity coarser than the write), and
// promotion to slot granularity removes it.
func TestSpanPoisoningAndPromotion(t *testing.T) {
	f := granFixture(t)

	coarse := f.newCell()
	seedSlot1(t, f, coarse, 7)
	if got := granTrial(t, f, coarse); got != 7 {
		t.Errorf("span granularity: slot1 = %d, want 7 (rollback must clobber the NT store)", got)
	}

	fine := f.newCell()
	seedSlot1(t, f, fine, 7)
	if !f.rt.PromoteObject(fine) {
		t.Fatal("PromoteObject reported no change")
	}
	if got := granTrial(t, f, fine); got != 99 {
		t.Errorf("promoted: slot1 = %d, want 99 (slot-level undo must preserve the NT store)", got)
	}

	// Demotion restores span behaviour.
	if !f.rt.DemoteObject(fine) {
		t.Fatal("DemoteObject reported no change")
	}
	seedSlot1(t, f, fine, 7)
	if got := granTrial(t, f, fine); got != 7 {
		t.Errorf("demoted: slot1 = %d, want 7 (span undo again)", got)
	}

	if got := f.rt.Stats.GranPromotions.Load(); got != 1 {
		t.Errorf("promotions = %d, want 1", got)
	}
	if got := f.rt.Stats.GranDemotions.Load(); got != 1 {
		t.Errorf("demotions = %d, want 1", got)
	}
}

// TestPromoteIdempotent: re-promoting and re-demoting report no change.
func TestPromoteIdempotent(t *testing.T) {
	f := granFixture(t)
	o := f.newCell()
	if !f.rt.PromoteObject(o) || f.rt.PromoteObject(o) {
		t.Error("promote: want true then false")
	}
	if !f.rt.DemoteObject(o) || f.rt.DemoteObject(o) {
		t.Error("demote: want true then false")
	}
}

// TestPromotionRacesActiveTxns hammers promotion/demotion transitions while
// transactions run (meaningful under -race): in-flight transactions keep
// their begin-time granularity, so no transition may corrupt state or trip
// the race detector.
func TestPromotionRacesActiveTxns(t *testing.T) {
	f := granFixture(t)
	const nObjs = 8
	objs := make([]*objmodel.Object, nObjs)
	for i := range objs {
		objs[i] = f.newCell()
	}
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(seed uint64) {
			defer workers.Done()
			r := seed
			for i := 0; i < 2000; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					r = r*6364136223846793005 + 1442695040888963407
					o := objs[r%nObjs]
					tx.Write(o, int(r>>32)&1, tx.Read(o, int(r>>16)&1)+1)
					return nil
				})
			}
		}(uint64(g + 1))
	}
	stop := make(chan struct{})
	var promoter sync.WaitGroup
	promoter.Add(1)
	go func() {
		defer promoter.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o := objs[i%nObjs]
			if i%2 == 0 {
				f.rt.PromoteObject(o)
			} else {
				f.rt.DemoteObject(o)
			}
		}
	}()
	workers.Wait()
	close(stop)
	promoter.Wait()
	// Final sanity: a fresh transaction still commits.
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(objs[0], 0, 42)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptGranularityFromHotspots: abort blame feeds the tracer's hotspot
// table, and AdaptGranularity promotes the hottest object and demotes
// everything else.
func TestAdaptGranularityFromHotspots(t *testing.T) {
	f := granFixture(t)
	tr := trace.New(trace.Config{})
	f.rt.SetTracer(tr)
	x, cold := f.newCell(), f.newCell()

	// Deterministic abort blamed on x: read x, then an NT-barrier-shaped
	// bump invalidates it before the transactional write-acquire.
	runs := 0
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		v := tx.Read(x, 0)
		if runs == 1 {
			if _, ok := x.Rec.AcquireAnon(); !ok {
				t.Fatal("acquire failed")
			}
			x.StoreSlot(0, 10)
			f.heap.Clock().Tick()
			x.Rec.ReleaseAnon()
		}
		tx.Write(x, 1, v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("runs = %d, want 2", runs)
	}

	// Pre-promote the cold object so adaptation has something to demote.
	f.rt.PromoteObject(cold)

	promoted, demoted := f.rt.AdaptGranularity(1)
	if promoted != 1 || demoted != 1 {
		t.Fatalf("AdaptGranularity = (%d promoted, %d demoted), want (1, 1)", promoted, demoted)
	}
	tab := f.rt.granTab.Load()
	if !tab.promoted(uint64(x.Ref())) {
		t.Error("hot object not promoted")
	}
	if tab.promoted(uint64(cold.Ref())) {
		t.Error("cold object still promoted")
	}

	// With no hot budget everything demotes.
	promoted, demoted = f.rt.AdaptGranularity(0)
	if promoted != 0 || demoted != 1 {
		t.Fatalf("AdaptGranularity(0) = (%d, %d), want (0, 1)", promoted, demoted)
	}
}
