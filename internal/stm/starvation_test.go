package stm

// Flight-recorder starvation litmus: the machine-checkable form of the
// ROADMAP's bounded-abort item. Two hammer workers take turns holding one
// hot object for ~100µs per transaction; a victim transaction needs the
// same object for an instant. Under plain backoff the victim's self-abort
// threshold restarts it with no memory of its suffering, so it loses the
// re-acquisition race to the hammerers indefinitely — the recorder's
// conflict DAG shows victim transactions with >= K consecutive aborts.
// Karma retains the victim's accumulated priority across restarts of the
// same transaction, so its rank grows until it dooms whichever hammerer
// is in its way and commits: the victim's consecutive aborts stay bounded
// below the same K. Both claims are asserted against the recorder's
// conflict graph — the same data `stmtrace starve` analyzes offline —
// which is what makes the litmus CI-checkable instead of eyeball-able.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/causal"
	"repro/internal/conflict"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

// starveK is the consecutive-abort bound: backoff's victim must exceed it,
// karma's must stay under it.
const starveK = 8

// starvationRun drives the hammer/victim workload with a flight recorder
// attached until stop returns true (checked every 20ms) or the deadline
// expires, then reports the victim's worst consecutive-abort streak, how
// many victim transactions committed, and the final graph.
type starvationRun struct {
	victimConsec  int
	victimCommits int
	graph         *causal.Graph
}

func runStarvationLitmus(t *testing.T, handler conflict.Handler, selfAbortAfter int,
	deadline time.Duration, stop func(starvationRun) bool) starvationRun {
	t.Helper()
	tr := trace.New(trace.Config{})
	rec := causal.NewRecorder(causal.Config{})
	tr.SetSink(rec)
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{
		Handler:        handler,
		SelfAbortAfter: selfAbortAfter,
	}})
	f.rt.SetTracer(tr)
	hot := f.newCell()

	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				// Errors here are only ever the final context cancellation.
				_ = f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
					tx.Write(hot, 0, uint64(w+1))
					time.Sleep(100 * time.Microsecond) // long hold
					return nil
				})
			}
		}()
	}

	var mu sync.Mutex
	victimIDs := make(map[uint64]bool)
	commits := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			err := f.rt.AtomicCtx(ctx, nil, func(tx *Txn) error {
				mu.Lock()
				victimIDs[tx.id] = true
				mu.Unlock()
				tx.Write(hot, 0, 100)
				return nil
			})
			if err == nil {
				mu.Lock()
				commits++
				mu.Unlock()
			}
		}
	}()

	snapshot := func() starvationRun {
		g := rec.Graph()
		mu.Lock()
		defer mu.Unlock()
		return starvationRun{
			victimConsec:  maxConsecutiveAborts(g, victimIDs),
			victimCommits: commits,
			graph:         g,
		}
	}
	var run starvationRun
	for ctx.Err() == nil {
		time.Sleep(20 * time.Millisecond)
		run = snapshot()
		if stop(run) {
			break
		}
	}
	cancel()
	wg.Wait()
	return snapshot()
}

// maxConsecutiveAborts walks the graph's attempt spans (already in
// sequence order) and returns the longest aborted-attempt streak among the
// given transactions. Attempts still running when the run was cancelled
// don't break or extend a streak.
func maxConsecutiveAborts(g *causal.Graph, txns map[uint64]bool) int {
	streak := make(map[uint64]int)
	max := 0
	for _, a := range g.Attempts {
		if !txns[a.Txn] {
			continue
		}
		switch a.Outcome {
		case causal.Aborted:
			streak[a.Txn]++
			if streak[a.Txn] > max {
				max = streak[a.Txn]
			}
		case causal.Committed:
			streak[a.Txn] = 0
		}
	}
	return max
}

func TestBackoffStarvationVisibleInConflictDAG(t *testing.T) {
	// Self-abort threshold low enough that a victim blown through by a
	// ~100µs hold restarts instead of waiting it out; backoff forgets the
	// loss, so the victim's losing streak grows without bound.
	run := runStarvationLitmus(t, &conflict.Backoff{}, 16, 20*time.Second,
		func(r starvationRun) bool { return r.victimConsec >= starveK })
	if run.victimConsec < starveK {
		t.Fatalf("backoff should starve the victim past %d consecutive aborts; saw %d (victim commits %d)",
			starveK, run.victimConsec, run.victimCommits)
	}
	rep := causal.Analyze(run.graph)
	if rep.WastedWorkRatio <= 0 {
		t.Fatalf("a starving run must report wasted work; ratio = %v", rep.WastedWorkRatio)
	}
	if rep.EdgeCounts["aborted-by"] == 0 {
		t.Fatalf("threshold restarts while waiting must yield aborted-by edges; edges = %v", rep.EdgeCounts)
	}
	t.Logf("backoff: victim consecutive aborts %d, victim commits %d, wasted %.1f%%, edges %v",
		run.victimConsec, run.victimCommits, 100*rep.WastedWorkRatio, rep.EdgeCounts)
}

func TestKarmaBoundsVictimConsecutiveAborts(t *testing.T) {
	// Same workload, but the self-abort threshold is disabled: conflictWait
	// checks the threshold before consulting the policy, so a low cap would
	// blindly restart karma's victim exactly like backoff and measure the
	// threshold, not the arbitration. With dooms as the only abort source,
	// the victim's karma survives restarts and its rank grows until it
	// dooms its way in.
	start := time.Now()
	run := runStarvationLitmus(t, &conflict.Karma{}, 1<<30, 10*time.Second,
		func(r starvationRun) bool {
			return time.Since(start) >= 500*time.Millisecond && r.victimCommits > 0
		})
	if run.victimCommits == 0 {
		t.Fatal("karma victim never committed")
	}
	if run.victimConsec >= starveK {
		t.Fatalf("karma must bound the victim's consecutive aborts below %d; saw %d (victim commits %d)",
			starveK, run.victimConsec, run.victimCommits)
	}
	rep := causal.Analyze(run.graph)
	t.Logf("karma: victim consecutive aborts %d, victim commits %d, edges %v",
		run.victimConsec, run.victimCommits, rep.EdgeCounts)
}
