package stm

// Tests for the observability layer on the eager runtime: the disabled
// path must stay allocation-free (committed transactions remain 0 allocs
// with no tracer installed), concurrent tracing must lose no events within
// ring capacity (run under -race in CI), and conflict attribution must
// name the object that actually caused the aborts.

import (
	"sync"
	"testing"

	"repro/internal/stmapi"
	"repro/internal/trace"
)

// TestDisabledTracerAllocFree pins the PR-1 property that the tracer hooks
// must not regress: with no tracer installed, a committed top-level
// transaction performs zero heap allocations.
func TestDisabledTracerAllocFree(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	body := func(tx *Txn) error {
		tx.Write(o, 0, tx.Read(o, 0)+1)
		return nil
	}
	// Warm the descriptor pool.
	for i := 0; i < 10; i++ {
		if err := f.rt.Atomic(nil, body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := f.rt.Atomic(nil, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("disabled-tracer transaction allocates %.1f objects, want 0", avg)
	}
}

// TestTraceEventLifecycle checks a single committed read-write transaction
// emits the expected event sequence with object identity and versions.
func TestTraceEventLifecycle(t *testing.T) {
	f := newFixture(t, Config{})
	tr := trace.New(trace.Config{ShardCapacity: 128, Shards: 1})
	f.rt.SetTracer(tr)
	o := f.newCell()
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 1, tx.Read(o, 0)+7)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	var kinds []trace.Kind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	want := []trace.Kind{trace.EvBegin, trace.EvRead, trace.EvLockAcquire, trace.EvWrite, trace.EvCommit}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (sequence %v)", i, kinds[i], want[i], kinds)
		}
	}
	ref := uint64(o.Ref())
	if evs[1].Obj != ref || evs[1].Slot != 0 {
		t.Errorf("read event = %+v, want obj %d slot 0", evs[1], ref)
	}
	if evs[2].Obj != ref || evs[2].Ver != 1 {
		t.Errorf("acquire event = %+v, want obj %d at version 1", evs[2], ref)
	}
	if evs[3].Obj != ref || evs[3].Slot != 1 {
		t.Errorf("write event = %+v, want obj %d slot 1", evs[3], ref)
	}
	if tr.CommitLatency().Count() != 1 {
		t.Errorf("commit latency observations = %d, want 1", tr.CommitLatency().Count())
	}
	id := evs[0].Txn
	for i, ev := range evs {
		if ev.Txn != id {
			t.Errorf("event %d txn = %d, want %d", i, ev.Txn, id)
		}
	}
}

// TestTraceNoEventLossParallel runs contention-free transactions from many
// goroutines with tracing enabled (under -race in CI) and checks that every
// commit and begin is present in the retained history — the ring has
// capacity for all of them, so none may be lost.
func TestTraceNoEventLossParallel(t *testing.T) {
	f := newFixture(t, Config{})
	const goroutines = 8
	const iters = 150
	// 5 events per txn (begin/read/acquire/write/commit) and the hint-based
	// shard choice may land every goroutine on one shard: size each shard
	// for the full stream.
	tr := trace.New(trace.Config{ShardCapacity: goroutines * iters * 5, Shards: 8})
	f.rt.SetTracer(tr)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		o := f.newCell()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if _, dropped := tr.Recorded(); dropped != 0 {
		t.Fatalf("dropped %d events despite sufficient capacity", dropped)
	}
	var begins, commits int
	perTxn := make(map[uint64]int)
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.EvBegin:
			begins++
		case trace.EvCommit:
			commits++
			perTxn[ev.Txn]++
		}
	}
	const total = goroutines * iters
	if commits != total || begins < total {
		t.Errorf("begins/commits = %d/%d, want >=%d/%d", begins, commits, total, total)
	}
	for id, n := range perTxn {
		if n != 1 {
			t.Errorf("txn %d committed %d times in the trace", id, n)
		}
	}
	if got := tr.Count(trace.EvCommit); got != int64(commits) {
		t.Errorf("Count(commit) = %d, events show %d", got, commits)
	}
}

// TestHotspotAttributionSkewedWrites drives a deterministic conflict on one
// object among many decoys and checks the tracer blames exactly that
// object: the acceptance criterion for conflict attribution.
func TestHotspotAttributionSkewedWrites(t *testing.T) {
	f := newFixture(t, Config{})
	tr := trace.New(trace.Config{ShardCapacity: 4096})
	f.rt.SetTracer(tr)

	hot := f.newCell()
	colds := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		c := f.newCell()
		colds = append(colds, uint64(c.Ref()))
		// Touch the decoys in committed transactions so they appear in the
		// trace but never in the hotspot table.
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(c, 0, 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	const conflicts = 5
	for i := 0; i < conflicts; i++ {
		attempt := 0
		err := f.rt.Atomic(nil, func(tx *Txn) error {
			attempt++
			_ = tx.Read(hot, 0)
			if attempt == 1 {
				// A competing committed write moves hot's version while we
				// hold it in our read set...
				done := make(chan error, 1)
				go func() {
					done <- f.rt.Atomic(nil, func(tx2 *Txn) error {
						tx2.Write(hot, 0, tx2.Read(hot, 0)+1)
						return nil
					})
				}()
				if err := <-done; err != nil {
					t.Error(err)
				}
				// ...so re-reading it dooms this attempt, blaming hot.
				_ = tx.Read(hot, 0)
				t.Error("doomed transaction kept running after stale read")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	top := tr.Hot().Top(5)
	if len(top) == 0 {
		t.Fatal("no hotspots recorded")
	}
	if top[0].Obj != uint64(hot.Ref()) {
		t.Fatalf("top hotspot = obj %d, want the hot object %d (top: %+v)", top[0].Obj, hot.Ref(), top)
	}
	if top[0].Aborts != conflicts {
		t.Errorf("hot aborts = %d, want %d", top[0].Aborts, conflicts)
	}
	for _, e := range top[1:] {
		for _, c := range colds {
			if e.Obj == c && (e.Aborts > 0 || e.Conflicts > 0) {
				t.Errorf("cold object %d charged with %d aborts / %d conflicts", c, e.Aborts, e.Conflicts)
			}
		}
	}
	if got := tr.Count(trace.EvAbort); got != conflicts {
		t.Errorf("abort events = %d, want %d", got, conflicts)
	}
	if tr.AbortGap().Count() != conflicts {
		t.Errorf("abort-to-retry gaps observed = %d, want %d", tr.AbortGap().Count(), conflicts)
	}
}

// TestTraceRetryAndQuiescence covers the retry event and the quiescence
// wait histogram.
func TestTraceRetryAndQuiescence(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	tr := trace.New(trace.Config{ShardCapacity: 1024})
	f.rt.SetTracer(tr)
	o := f.newCell()

	started := make(chan struct{})
	var once sync.Once
	done := make(chan error, 1)
	go func() {
		done <- f.rt.Atomic(nil, func(tx *Txn) error {
			v := tx.Read(o, 0)
			if v == 0 {
				once.Do(func() { close(started) })
				tx.Retry()
			}
			return nil
		})
	}()
	<-started
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(trace.EvRetry); got < 1 {
		t.Errorf("retry events = %d, want >= 1", got)
	}
	if tr.QuiesceWait().Count() < 1 {
		t.Errorf("quiescence waits observed = %d, want >= 1", tr.QuiesceWait().Count())
	}
}

// TestSetTracerMidstream checks installation/removal: transactions begun
// after SetTracer(nil) emit nothing.
func TestSetTracerMidstream(t *testing.T) {
	f := newFixture(t, Config{})
	tr := trace.New(trace.Config{ShardCapacity: 64})
	o := f.newCell()
	inc := func(tx *Txn) error { tx.Write(o, 0, tx.Read(o, 0)+1); return nil }

	if err := f.rt.Atomic(nil, inc); err != nil {
		t.Fatal(err)
	}
	if got, _ := tr.Recorded(); got != 0 {
		t.Fatalf("events before install = %d", got)
	}
	f.rt.SetTracer(tr)
	if err := f.rt.Atomic(nil, inc); err != nil {
		t.Fatal(err)
	}
	after1, _ := tr.Recorded()
	if after1 == 0 {
		t.Fatal("no events after install")
	}
	f.rt.SetTracer(nil)
	if err := f.rt.Atomic(nil, inc); err != nil {
		t.Fatal(err)
	}
	if after2, _ := tr.Recorded(); after2 != after1 {
		t.Errorf("events grew from %d to %d after removal", after1, after2)
	}
}

func TestStatsSnapshot(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	for i := 0; i < 3; i++ {
		if err := f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = f.rt.Atomic(nil, func(tx *Txn) error { return ErrAborted })
	s := f.rt.Stats.Snapshot()
	if s.Commits != 3 || s.Aborts != 1 || s.Starts != 4 {
		t.Errorf("snapshot = %+v, want 4 starts, 3 commits, 1 abort", s)
	}
	if s.TxnReads != 3 || s.TxnWrites != 3 {
		t.Errorf("snapshot accesses = %+v", s)
	}
	if s.Commits != f.rt.Stats.Commits.Load() {
		t.Errorf("snapshot disagrees with Load()")
	}
}
