package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

type fixture struct {
	heap *objmodel.Heap
	rt   *Runtime
	cls  *objmodel.Class
}

func newFixture(t testing.TB, cfg Config) *fixture {
	t.Helper()
	h := objmodel.NewHeap()
	if cfg.DEA {
		h.AllocPrivate = true
	}
	rt := New(h, cfg)
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name: "Cell",
		Fields: []objmodel.Field{
			{Name: "f"}, {Name: "g"}, {Name: "next", IsRef: true},
		},
	})
	return &fixture{heap: h, rt: rt, cls: cls}
}

func (f *fixture) newCell() *objmodel.Object { return f.heap.New(f.cls) }

func TestCommitBasic(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 41)
		tx.Write(o, 0, tx.Read(o, 0)+1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.LoadSlot(0); got != 42 {
		t.Errorf("slot0 = %d, want 42", got)
	}
	w := o.Rec.Load()
	if !txrec.IsShared(w) || txrec.Version(w) != 2 {
		t.Errorf("record after commit = %#x, want shared v2", w)
	}
	if f.rt.Stats.Commits.Load() != 1 {
		t.Errorf("commits = %d", f.rt.Stats.Commits.Load())
	}
}

func TestUserErrorAborts(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	o.StoreSlot(0, 7)
	myErr := errors.New("boom")
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 99)
		return myErr
	})
	if !errors.Is(err, myErr) {
		t.Fatalf("err = %v, want %v", err, myErr)
	}
	if got := o.LoadSlot(0); got != 7 {
		t.Errorf("slot0 = %d after abort, want 7 (rolled back)", got)
	}
	w := o.Rec.Load()
	if !txrec.IsShared(w) {
		t.Fatalf("record not released after abort: %#x", w)
	}
	if txrec.Version(w) != 2 {
		t.Errorf("abort must bump version; got v%d", txrec.Version(w))
	}
	if f.rt.Stats.Aborts.Load() != 1 {
		t.Errorf("aborts = %d, want 1", f.rt.Stats.Aborts.Load())
	}
}

func TestRestartReexecutes(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		tx.Write(o, 0, uint64(runs))
		if runs < 3 {
			tx.Restart()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("runs = %d, want 3", runs)
	}
	if got := o.LoadSlot(0); got != 3 {
		t.Errorf("slot0 = %d, want 3", got)
	}
	if f.rt.Stats.Aborts.Load() != 2 {
		t.Errorf("aborts = %d, want 2", f.rt.Stats.Aborts.Load())
	}
}

func TestRollbackReverseOrder(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	o.StoreSlot(0, 100)
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		tx.Write(o, 0, 2)
		tx.Write(o, 0, 3)
		return ErrAborted
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatal(err)
	}
	if got := o.LoadSlot(0); got != 100 {
		t.Errorf("slot0 = %d, want original 100", got)
	}
}

// TestCounterAtomicity runs concurrent increment transactions and checks
// that no update is lost.
func TestCounterAtomicity(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	const (
		goroutines = 8
		iters      = 300
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := o.LoadSlot(0); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
}

// TestInvariantPreserved maintains x+y == 0 across transfer transactions
// while readers check the invariant transactionally.
func TestInvariantPreserved(t *testing.T) {
	f := newFixture(t, Config{})
	x, y := f.newCell(), f.newCell()
	stop := make(chan struct{})
	var bad atomic.Int64
	var readers, writers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var a, b int64
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					a = int64(tx.Read(x, 0))
					b = int64(tx.Read(y, 0))
					return nil
				})
				if a+b != 0 {
					bad.Add(1)
				}
			}
		}()
	}
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 400; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(x, 0, tx.Read(x, 0)+1)
					tx.Write(y, 0, tx.Read(y, 0)-1)
					return nil
				})
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d isolation violations observed", bad.Load())
	}
	if x.LoadSlot(0) != 1600 {
		t.Errorf("x = %d, want 1600", x.LoadSlot(0))
	}
}

func TestRetryWaitsForChange(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	done := make(chan uint64)
	go func() {
		var got uint64
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			v := tx.Read(o, 0)
			if v == 0 {
				tx.Retry()
			}
			got = v
			return nil
		})
		done <- got
	}()
	// Let the retry engage, then satisfy it from another transaction.
	for f.rt.Stats.UserRetries.Load() == 0 {
	}
	if err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 5)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got != 5 {
		t.Errorf("retry observed %d, want 5", got)
	}
}

func TestClosedNestingPartialAbort(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	inner := errors.New("inner failed")
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		if err := f.rt.Atomic(tx, func(tx *Txn) error {
			tx.Write(o, 0, 2)
			tx.Write(o, 1, 77)
			return inner
		}); !errors.Is(err, inner) {
			t.Errorf("nested err = %v", err)
		}
		// Nested effects must be rolled back, outer effects intact.
		if got := tx.Read(o, 0); got != 1 {
			t.Errorf("after nested abort slot0 = %d, want 1", got)
		}
		if got := tx.Read(o, 1); got != 0 {
			t.Errorf("after nested abort slot1 = %d, want 0", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.LoadSlot(0) != 1 || o.LoadSlot(1) != 0 {
		t.Errorf("final state = (%d,%d), want (1,0)", o.LoadSlot(0), o.LoadSlot(1))
	}
}

func TestClosedNestingCommit(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		return f.rt.Atomic(tx, func(tx *Txn) error {
			tx.Write(o, 1, 2)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.LoadSlot(0) != 1 || o.LoadSlot(1) != 2 {
		t.Errorf("state = (%d,%d), want (1,2)", o.LoadSlot(0), o.LoadSlot(1))
	}
}

func TestOpenNestingCommitsIndependently(t *testing.T) {
	f := newFixture(t, Config{})
	o, log := f.newCell(), f.newCell()
	compensated := false
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 1)
		// Open-nested action commits immediately.
		if err := f.rt.AtomicOpen(tx, func(otx *Txn) error {
			otx.Write(log, 0, otx.Read(log, 0)+1)
			return nil
		}, func() { compensated = true }); err != nil {
			return err
		}
		// The open-nested effect must be visible even though the parent has
		// not committed.
		if got := log.LoadSlot(0); got != 1 {
			t.Errorf("open-nested effect not visible: %d", got)
		}
		return ErrAborted // parent aborts
	})
	if !errors.Is(err, ErrAborted) {
		t.Fatal(err)
	}
	if o.LoadSlot(0) != 0 {
		t.Error("parent effect survived abort")
	}
	if log.LoadSlot(0) != 1 {
		t.Error("open-nested effect rolled back with parent")
	}
	if !compensated {
		t.Error("compensation did not run on parent abort")
	}
}

func TestOpenNestingCompensationSkippedOnCommit(t *testing.T) {
	f := newFixture(t, Config{})
	log := f.newCell()
	compensated := false
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		return f.rt.AtomicOpen(tx, func(otx *Txn) error {
			otx.Write(log, 0, 1)
			return nil
		}, func() { compensated = true })
	})
	if err != nil {
		t.Fatal(err)
	}
	if compensated {
		t.Error("compensation ran despite parent commit")
	}
}

// TestValidationDetectsNonTxnVersionBump simulates a strong-atomicity
// non-transactional write (acquire-anonymous + release) between a
// transactional read and commit; the transaction must abort and re-execute.
func TestValidationDetectsNonTxnVersionBump(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		v := tx.Read(o, 0)
		if runs == 1 {
			// Simulate the NT write barrier: acquire, store, tick, release.
			// Like the real barrier (strong.Barriers.Write) the commit clock
			// ticks before the release publishes the value, so stale snapshots
			// lose the validation fast path.
			if _, ok := o.Rec.AcquireAnon(); !ok {
				t.Fatal("acquire failed")
			}
			o.StoreSlot(0, 10)
			f.heap.Clock().Tick()
			o.Rec.ReleaseAnon()
		}
		tx.Write(o, 1, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2 (validation failure forces retry)", runs)
	}
	if got := o.LoadSlot(1); got != 10 {
		t.Errorf("slot1 = %d, want 10 (re-execution saw the NT write)", got)
	}
}

func TestDoomedReadRestarts(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		_ = tx.Read(o, 0)
		if runs == 1 {
			// Bump the version outside the transaction.
			if _, ok := o.Rec.AcquireAnon(); !ok {
				t.Fatal("acquire failed")
			}
			o.Rec.ReleaseAnon()
			// Second read of the same object at a new version must restart.
			_ = tx.Read(o, 0)
			t.Error("doomed second read did not restart")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2", runs)
	}
}

// TestForeignPanicWhileDoomedRestarts checks the managed-runtime doomed
// transaction story: a panic raised while the read set is invalid converts
// to an abort-and-restart instead of propagating.
func TestForeignPanicWhileDoomedRestarts(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	runs := 0
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		runs++
		tx.reads.Put(o, 999) // forge an invalid read entry: transaction is doomed
		if runs == 1 {
			panic(objmodel.ErrNullDeref)
		}
		tx.reads.Delete(o)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Errorf("runs = %d, want 2", runs)
	}
}

func TestForeignPanicWhileValidPropagates(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	o.StoreSlot(0, 5)
	defer func() {
		if r := recover(); r != "user panic" {
			t.Errorf("recovered %v, want user panic", r)
		}
		if o.LoadSlot(0) != 5 {
			t.Error("no rollback before propagating panic is acceptable only if slot unchanged")
		}
	}()
	_ = f.rt.Atomic(nil, func(tx *Txn) error {
		panic("user panic")
	})
}

func TestDEAPrivateAccessSkipsLocking(t *testing.T) {
	f := newFixture(t, Config{DEA: true})
	o := f.newCell()
	if !o.IsPrivate() {
		t.Fatal("object not private at birth")
	}
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 9)
		if !o.IsPrivate() {
			t.Error("private write acquired the record")
		}
		if got := tx.Read(o, 0); got != 9 {
			t.Errorf("read-own-write on private object = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.IsPrivate() {
		t.Error("object should remain private after commit")
	}
}

func TestDEAPrivateRollback(t *testing.T) {
	f := newFixture(t, Config{DEA: true})
	o := f.newCell()
	o.StoreSlot(0, 3)
	_ = f.rt.Atomic(nil, func(tx *Txn) error {
		tx.Write(o, 0, 50)
		return ErrAborted
	})
	if got := o.LoadSlot(0); got != 3 {
		t.Errorf("private object not rolled back: %d", got)
	}
}

// TestDEATxnWritePublishes verifies Section 4's rule: a transactional write
// of a reference into a public object immediately publishes the referenced
// private subgraph, before commit.
func TestDEATxnWritePublishes(t *testing.T) {
	f := newFixture(t, Config{DEA: true})
	pub := f.heap.NewPublic(f.cls)
	priv := f.newCell()
	child := f.newCell()
	priv.StoreSlot(2, uint64(child.Ref()))
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.WriteRef(pub, 2, priv.Ref())
		if priv.IsPrivate() || child.IsPrivate() {
			t.Error("referenced subgraph not published immediately at the write")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDEAWriteIntoPrivateDoesNotPublish(t *testing.T) {
	f := newFixture(t, Config{DEA: true})
	container := f.newCell()
	child := f.newCell()
	err := f.rt.Atomic(nil, func(tx *Txn) error {
		tx.WriteRef(container, 2, child.Ref())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !child.IsPrivate() {
		t.Error("write into a private container must not publish the value")
	}
}

// TestGranularitySpanUndo checks that with 2-slot granularity an abort
// restores the *adjacent* slot too — the raw material of the granular lost
// update anomaly (Section 2.4).
func TestGranularitySpanUndo(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 2}})
	o := f.newCell()
	o.StoreSlot(0, 1) // f
	o.StoreSlot(1, 2) // g
	barrier := make(chan struct{})
	resume := make(chan struct{})
	done := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, 42) // undo entry captures slots {0,1} = {1,2}
			close(barrier)
			<-resume
			return ErrAborted
		})
		close(done)
	}()
	<-barrier
	// A (weakly-atomic) non-transactional write to the adjacent slot g.
	o.StoreSlot(1, 99)
	close(resume)
	<-done
	if got := o.LoadSlot(1); got != 2 {
		// The rollback restored g from the 2-slot undo span: the
		// non-transactional update was lost, as Section 2.4 predicts.
		t.Fatalf("slot g = %d; expected the granular lost update to restore 2", got)
	}
	if got := o.LoadSlot(0); got != 1 {
		t.Errorf("slot f = %d, want 1", got)
	}
}

func TestGranularityOneDoesNotSpan(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Granularity: 1}})
	o := f.newCell()
	o.StoreSlot(1, 2)
	sync1 := make(chan struct{})
	resume := make(chan struct{})
	done := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, 42)
			close(sync1)
			<-resume
			return ErrAborted
		})
		close(done)
	}()
	<-sync1
	o.StoreSlot(1, 99)
	close(resume)
	<-done
	if got := o.LoadSlot(1); got != 99 {
		t.Errorf("slot g = %d, want 99 (field-granular undo must not touch it)", got)
	}
}

// TestQuiescenceWaitsForActive: a committed transaction in quiescence mode
// must not return while another transaction that started earlier is active.
func TestQuiescenceWaitsForActive(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	a, b := f.newCell(), f.newCell()
	inBody := make(chan struct{})
	finish := make(chan struct{})
	var order []string
	var mu sync.Mutex
	push := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // long-running transaction
		defer wg.Done()
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			_ = tx.Read(a, 0)
			close(inBody)
			<-finish
			return nil
		})
		push("long-done")
	}()
	go func() { // committer that must quiesce
		defer wg.Done()
		<-inBody
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(b, 0, 1)
			return nil
		})
		push("commit-returned")
	}()
	go func() {
		// Release the long transaction after giving the committer a chance
		// to reach its quiesce wait.
		<-inBody
		for f.rt.Stats.Commits.Load() == 0 {
		}
		close(finish)
	}()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "long-done" {
		t.Errorf("order = %v, want long transaction to finish before quiesced commit returns", order)
	}
}

func TestStatsCounting(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	_ = f.rt.Atomic(nil, func(tx *Txn) error {
		_ = tx.Read(o, 0)
		tx.Write(o, 0, 1)
		return nil
	})
	if f.rt.Stats.TxnReads.Load() != 1 || f.rt.Stats.TxnWrites.Load() != 1 {
		t.Errorf("reads/writes = %d/%d, want 1/1",
			f.rt.Stats.TxnReads.Load(), f.rt.Stats.TxnWrites.Load())
	}
	if f.rt.Stats.Starts.Load() != 1 {
		t.Errorf("starts = %d", f.rt.Stats.Starts.Load())
	}
}

func TestActiveTransactions(t *testing.T) {
	f := newFixture(t, Config{})
	inBody := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = f.rt.Atomic(nil, func(tx *Txn) error {
			close(inBody)
			<-release
			return nil
		})
	}()
	<-inBody
	if n := f.rt.ActiveTransactions(); n != 1 {
		t.Errorf("active = %d, want 1", n)
	}
	close(release)
}

func TestBadGranularityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("granularity 3 accepted")
		}
	}()
	New(objmodel.NewHeap(), Config{CommonConfig: stmapi.CommonConfig{Granularity: 3}})
}

func ExampleRuntime_Atomic() {
	heap := objmodel.NewHeap()
	rt := New(heap, Config{})
	acct := heap.MustDefineClass(objmodel.ClassSpec{
		Name:   "Account",
		Fields: []objmodel.Field{{Name: "balance"}},
	})
	a, b := heap.New(acct), heap.New(acct)
	a.StoreSlot(0, 100)
	_ = rt.Atomic(nil, func(tx *Txn) error {
		amt := uint64(30)
		tx.Write(a, 0, tx.Read(a, 0)-amt)
		tx.Write(b, 0, tx.Read(b, 0)+amt)
		return nil
	})
	fmt.Println(a.LoadSlot(0), b.LoadSlot(0))
	// Output: 70 30
}
