// Package stm implements the eager-versioning software transactional memory
// at the core of the paper's system (Section 3): McRT-STM-style optimistic
// concurrency control using versioning for reads and strict two-phase
// locking with eager versioning (in-place update + undo log) for writes.
//
// Each object's transaction record (package txrec) arbitrates access. A
// transaction opens an object for reading by sampling its version and
// validating the whole read set at commit; it opens an object for writing
// by CAS-ing the record from Shared to Exclusive, updating memory in place,
// and logging the old value for rollback. Commit validates the read set and
// releases owned records with incremented versions; abort replays the undo
// log in reverse and releases with incremented versions so that optimistic
// readers of intermediate state fail validation.
//
// The package also provides the features the paper's system supports:
// closed nesting (savepoints), open nesting with compensation actions,
// user-initiated retry, a quiescence mode (Section 3.4), configurable
// undo-log granularity (to reproduce the Section 2.4 anomalies), and
// integration with dynamic escape analysis (Section 4): accesses to
// private objects skip synchronization, and writing a reference into a
// public object immediately publishes the referenced private subgraph.
//
// The hot path is engineered to scale with thread count (the property the
// paper's Section 7 results hinge on): statistics are accumulated in plain
// per-descriptor counters and flushed into sharded aggregates only at
// commit/abort, descriptors are pooled so a top-level Atomic allocates
// nothing in steady state, read/owned sets use an inline-array fast path
// (package objset), and the active-transaction registry is a fixed sharded
// slot array so begin/end cost one CAS and one store.
package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/objset"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// Status is the lifecycle state of a transaction attempt.
type Status uint32

// Transaction statuses.
const (
	Active Status = iota
	Committed
	Aborted
)

// MaxGranularity is the largest supported version-management granularity in
// slots.
const MaxGranularity = 2

// Config parameterizes a Runtime.
type Config struct {
	// Granularity is the number of adjacent slots covered by one undo-log
	// entry: 1 (field-granular, the safe default) or 2 (reproduces the
	// granular lost update anomaly of Section 2.4).
	Granularity int

	// Quiescence enables the Section 3.4 privatization mechanism: a
	// transaction completes only after all transactions concurrently active
	// at its commit have finished or restarted.
	Quiescence bool

	// DEA enables dynamic escape analysis cooperation: transactional
	// accesses to private objects skip record synchronization and undo
	// logging still applies; transactional writes of references into public
	// objects publish the referenced subgraph immediately (Section 4).
	DEA bool

	// Handler receives conflict notifications; nil means a shared Backoff.
	Handler conflict.Handler

	// SelfAbortAfter is the number of conflict-handler invocations a single
	// transactional access tolerates before the transaction aborts itself
	// and restarts (breaking writer-writer deadlocks). Zero means the
	// default of 64.
	SelfAbortAfter int
}

// DefaultSelfAbortAfter is the default Config.SelfAbortAfter.
const DefaultSelfAbortAfter = 64

// Stats aggregates runtime counters for experiments. Each counter is
// sharded across cache lines (package stats); transactions accumulate
// deltas in descriptor-local fields and flush them at commit/abort, so no
// per-access global atomic exists anywhere on the hot path.
type Stats struct {
	Starts      stats.Counter // transaction attempts begun
	Commits     stats.Counter
	Aborts      stats.Counter // aborts of any cause (conflict, validation, retry)
	UserRetries stats.Counter // user-initiated retry operations
	TxnReads    stats.Counter
	TxnWrites   stats.Counter
}

// StatsSnapshot is a point-in-time copy of every Stats counter as plain
// values, so callers (benchmarks, exporters) read them in one call instead
// of hand-enumerating .Load() per field.
type StatsSnapshot struct {
	Starts      int64 `json:"starts"`
	Commits     int64 `json:"commits"`
	Aborts      int64 `json:"aborts"`
	UserRetries int64 `json:"user_retries"`
	TxnReads    int64 `json:"txn_reads"`
	TxnWrites   int64 `json:"txn_writes"`
}

// Snapshot sums every counter's shards. Like Counter.Load it is not an
// atomic cut across counters, which is the usual statistics contract.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:      s.Starts.Load(),
		Commits:     s.Commits.Load(),
		Aborts:      s.Aborts.Load(),
		UserRetries: s.UserRetries.Load(),
		TxnReads:    s.TxnReads.Load(),
		TxnWrites:   s.TxnWrites.Load(),
	}
}

// regSlots is the capacity of the fixed active-transaction slot array.
// Power of two. More than regSlots concurrently active transactions spill
// into a sync.Map overflow (correct but slower; unreachable in the paper's
// thread sweeps).
const regSlots = 256

// regSlot is one registry slot, padded to a cache line so neighbouring
// claims and releases do not false-share.
type regSlot struct {
	p atomic.Pointer[Txn]
	_ [56]byte
}

// registry tracks in-flight transaction descriptors. Claiming is a CAS
// into an id-hashed slot with linear probing; releasing is a single nil
// store. Scans (quiescence, ActiveTransactions) walk the array without
// allocating — unlike the sync.Map it replaces, whose Store/Delete
// allocated on every transaction and whose Range boxed every entry.
type registry struct {
	slots    [regSlots]regSlot
	overflow sync.Map // id -> *Txn, only when the slot array is full
}

func (r *registry) add(tx *Txn) {
	h := int(tx.id)
	for i := 0; i < regSlots; i++ {
		s := &r.slots[(h+i)&(regSlots-1)]
		if s.p.Load() == nil && s.p.CompareAndSwap(nil, tx) {
			tx.slot = (h + i) & (regSlots - 1)
			return
		}
	}
	tx.slot = -1
	r.overflow.Store(tx.id, tx)
}

func (r *registry) remove(tx *Txn) {
	if tx.slot >= 0 {
		r.slots[tx.slot].p.Store(nil)
		return
	}
	r.overflow.Delete(tx.id)
}

// forEach calls f for every registered descriptor until f returns false.
func (r *registry) forEach(f func(*Txn) bool) {
	for i := range r.slots {
		if tx := r.slots[i].p.Load(); tx != nil {
			if !f(tx) {
				return
			}
		}
	}
	r.overflow.Range(func(_, v any) bool { return f(v.(*Txn)) })
}

// Runtime is an STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg     Config
	handler conflict.Handler
	nextID  atomic.Uint64
	seq     atomic.Uint64 // global begin/commit sequence for quiescence
	reg     registry      // active-transaction registry
	pool    sync.Pool     // idle *Txn descriptors
	tracer  atomic.Pointer[trace.Tracer]
}

// SetTracer installs (or, with nil, removes) the event tracer. Descriptors
// sample the tracer when a top-level Atomic begins, so transactions already
// in flight keep their previous setting. With no tracer installed the hot
// path pays one nil check per emission point and nothing else.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer.Load() }

// New creates a Runtime over heap with the given configuration.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if cfg.Granularity == 0 {
		cfg.Granularity = 1
	}
	if cfg.Granularity < 1 || cfg.Granularity > MaxGranularity {
		panic(fmt.Sprintf("stm: unsupported granularity %d", cfg.Granularity))
	}
	if cfg.SelfAbortAfter == 0 {
		cfg.SelfAbortAfter = DefaultSelfAbortAfter
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	return &Runtime{Heap: heap, cfg: cfg, handler: h}
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// control-flow signals raised inside transaction bodies.
type signal uint8

const (
	sigRestart signal = iota + 1 // conflict or explicit restart: abort and re-execute
	sigRetry                     // user retry: abort, wait for read set change, re-execute
)

type txSignal struct {
	s  signal
	tx *Txn
}

// ErrAborted is returned by Atomic when the body requests a permanent abort
// by returning it: the transaction rolls back and Atomic returns ErrAborted
// without retrying.
var ErrAborted = errors.New("stm: transaction aborted by user")

type ownedEntry struct {
	obj     *objmodel.Object
	version uint64 // version observed in the Shared word we replaced
}

type undoEntry struct {
	obj  *objmodel.Object
	base int // first slot of the span
	n    int // number of slots captured
	vals [MaxGranularity]uint64
}

type savepoint struct {
	undoLen   int
	writesLen int
	compLen   int
}

// Txn is a transaction descriptor. A Txn is confined to the goroutine that
// runs the atomic body; only status and beginSeq are read by other threads.
// Descriptors are pooled: outside an Atomic call a descriptor may be reused
// by any goroutine, so user code must not retain one past the body.
type Txn struct {
	rt       *Runtime
	id       uint64
	slot     int // registry slot index, -1 when in overflow
	status   atomic.Uint32
	beginSeq atomic.Uint64

	reads   objset.VerSet // first-read version per object
	owned   objset.VerSet // object -> version saved at acquire
	writes  []ownedEntry
	undo    []undoEntry
	saves   []savepoint
	comps   []func() // open-nesting compensations, run on abort in reverse
	attempt int

	// Statistics deltas accumulated without synchronization and flushed to
	// the runtime's sharded counters at commit/abort.
	nStarts  int64
	nReads   int64
	nWrites  int64
	nRetries int64

	// Tracing state. tr is sampled from the runtime once per top-level
	// Atomic; nil (the default) disables every emission point behind one
	// predictable branch. blameObj is the handle of the object a pending
	// abort is attributed to; beginAt/abortAt feed the commit-latency and
	// abort-to-retry histograms.
	tr       *trace.Tracer
	blameObj uint64
	beginAt  time.Time
	abortAt  time.Time
}

// ID returns the transaction's owner ID as encoded in acquired records.
func (tx *Txn) ID() uint64 { return tx.id }

// Status returns the descriptor's current status.
func (tx *Txn) Status() Status { return Status(tx.status.Load()) }

// getTxn fetches a pooled descriptor (or allocates the first time), assigns
// a fresh owner ID, and registers it. The fresh ID per top-level Atomic
// keeps record-ownership comparisons ABA-free across descriptor reuse.
func (rt *Runtime) getTxn() *Txn {
	tx, _ := rt.pool.Get().(*Txn)
	if tx == nil {
		tx = &Txn{rt: rt}
	}
	tx.id = rt.nextID.Add(1)
	tx.tr = rt.tracer.Load()
	tx.blameObj = 0
	tx.abortAt = time.Time{}
	rt.reg.add(tx)
	return tx
}

// putTxn unregisters the descriptor, drops every object reference it holds
// (so pooled descriptors never pin dead heap objects or leak state into
// their next incarnation), and returns it to the pool.
func (rt *Runtime) putTxn(tx *Txn) {
	rt.reg.remove(tx)
	tx.reads.Reset()
	tx.owned.Reset()
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	clear(tx.undo)
	tx.undo = tx.undo[:0]
	clear(tx.comps)
	tx.comps = tx.comps[:0]
	tx.saves = tx.saves[:0]
	rt.pool.Put(tx)
}

func (tx *Txn) begin() {
	tx.status.Store(uint32(Active))
	tx.beginSeq.Store(tx.rt.seq.Add(1))
	tx.reads.Reset()
	tx.owned.Reset()
	tx.writes = tx.writes[:0]
	tx.undo = tx.undo[:0]
	tx.saves = tx.saves[:0]
	tx.comps = tx.comps[:0]
	tx.nStarts++
	if tr := tx.tr; tr != nil {
		tx.beginAt = time.Now()
		if !tx.abortAt.IsZero() {
			tr.ObserveAbortGap(tx.beginAt.Sub(tx.abortAt))
			tx.abortAt = time.Time{}
		}
		tr.Record(trace.EvBegin, tx.id, 0, 0, 0)
	}
}

// flushStats drains the descriptor-local counters into the sharded
// aggregates. Called at commit and abort — the transaction boundaries where
// other threads may legitimately observe the totals.
func (tx *Txn) flushStats() {
	s := &tx.rt.Stats
	hint := int(tx.id)
	if tx.nStarts != 0 {
		s.Starts.AddShard(hint, tx.nStarts)
		tx.nStarts = 0
	}
	if tx.nReads != 0 {
		s.TxnReads.AddShard(hint, tx.nReads)
		tx.nReads = 0
	}
	if tx.nWrites != 0 {
		s.TxnWrites.AddShard(hint, tx.nWrites)
		tx.nWrites = 0
	}
	if tx.nRetries != 0 {
		s.UserRetries.AddShard(hint, tx.nRetries)
		tx.nRetries = 0
	}
}

// Restart aborts the transaction and re-executes it from the beginning of
// the outermost atomic block. Exposed so tests and litmus programs can
// force the "transaction aborts for some reason" steps of the paper's
// Figure 3 examples, and used internally when an access discovers the
// transaction is doomed.
func (tx *Txn) Restart() {
	panic(txSignal{sigRestart, tx})
}

// Retry implements the user-initiated retry operation: the transaction
// aborts and blocks until some location in its read set changes, then
// re-executes.
func (tx *Txn) Retry() {
	tx.nRetries++
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvRetry, tx.id, 0, 0, 0)
	}
	panic(txSignal{sigRetry, tx})
}

func (tx *Txn) conflictWait(o *objmodel.Object, kind conflict.Kind, attempt int, rec txrec.Word) {
	if tr := tx.tr; tr != nil {
		ref := uint64(o.Ref())
		tr.Record(trace.EvConflict, tx.id, ref, 0, 0)
		tr.Hot().BumpConflict(ref)
	}
	if attempt >= tx.rt.cfg.SelfAbortAfter {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	tx.rt.handler.HandleConflict(conflict.Info{Kind: kind, Attempt: attempt, Record: rec})
}

// Read opens object o for reading at slot and returns the value
// (open-for-read, Section 3.1). Private objects (dynamic escape analysis)
// are read directly. Reads of objects owned by other transactions or by
// non-transactional writers invoke the conflict manager and retry.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.nReads++
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Visible to this thread only; no logging or validation needed.
			return o.LoadSlot(slot)
		case txrec.IsExclusive(w):
			if txrec.Owner(w) == tx.id {
				if tr := tx.tr; tr != nil {
					tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
				}
				return o.LoadSlot(slot)
			}
			tx.conflictWait(o, conflict.TxnRead, attempt, w)
		case txrec.IsExclusiveAnon(w):
			// A non-transactional writer holds the record.
			tx.conflictWait(o, conflict.TxnRead, attempt, w)
		default: // shared
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				// Record changed under us; retry the sample.
				continue
			}
			ver := txrec.Version(w)
			if prev, ok := tx.reads.Get(o); ok {
				if prev != ver {
					// We already read this object at an older version: the
					// transaction is doomed; abort eagerly.
					tx.blameObj = uint64(o.Ref())
					tx.Restart()
				}
			} else {
				tx.reads.Put(o, ver)
			}
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
			}
			return v
		}
	}
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

func (tx *Txn) logUndo(o *objmodel.Object, slot int) {
	g := tx.rt.cfg.Granularity
	base := slot &^ (g - 1)
	e := undoEntry{obj: o, base: base}
	for i := 0; i < g && base+i < len(o.Slots); i++ {
		e.vals[i] = o.LoadSlot(base + i)
		e.n++
	}
	tx.undo = append(tx.undo, e)
}

func (tx *Txn) maybePublish(o *objmodel.Object, slot int, v uint64) {
	if !tx.rt.cfg.DEA || v == 0 || !o.IsRefSlot(slot) {
		return
	}
	// The container is public (callers ensure this); publish the referenced
	// subgraph immediately — even before commit, a doomed transaction in
	// another thread may access objects published by this write (Section 4).
	tx.rt.Heap.PublishRef(objmodel.Ref(v))
}

// Write opens object o for writing at slot and stores v in place
// (open-for-write with strict two-phase locking and eager versioning).
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	tx.nWrites++
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Thread-local: no locking, but rollback must still restore it.
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			return
		case txrec.IsExclusive(w):
			if txrec.Owner(w) != tx.id {
				tx.conflictWait(o, conflict.TxnWrite, attempt, w)
				continue
			}
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			tx.maybePublish(o, slot, v)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, 0)
			}
			return
		case txrec.IsExclusiveAnon(w):
			tx.conflictWait(o, conflict.TxnWrite, attempt, w)
		default: // shared: acquire
			if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
				continue
			}
			ver := txrec.Version(w)
			tx.writes = append(tx.writes, ownedEntry{o, ver})
			tx.owned.Put(o, ver)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvLockAcquire, tx.id, uint64(o.Ref()), slot, ver)
			}
			if prev, ok := tx.reads.Get(o); ok && prev != ver {
				// Object changed between our read and this acquire: doomed.
				tx.blameObj = uint64(o.Ref())
				tx.Restart()
			}
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			tx.maybePublish(o, slot, v)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, ver)
			}
			return
		}
	}
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// Validate re-checks the read set and reports whether the transaction is
// still consistent. The VM calls this periodically so that doomed
// transactions (which have read data speculatively written by others)
// abort promptly instead of looping or faulting.
func (tx *Txn) Validate() bool {
	ok, _ := tx.validate()
	return ok
}

// validate re-checks the read set; on failure it also reports the handle
// of the first inconsistent object, for conflict attribution.
func (tx *Txn) validate() (bool, uint64) {
	ok := true
	var bad uint64
	tx.reads.Range(func(o *objmodel.Object, ver uint64) bool {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Only this thread could ever have seen it; trivially valid.
		case txrec.IsShared(w):
			if txrec.Version(w) != ver {
				ok = false
			}
		case txrec.IsExclusive(w) && txrec.Owner(w) == tx.id:
			if ov, _ := tx.owned.Get(o); ov != ver {
				ok = false
			}
		default:
			ok = false
		}
		if !ok {
			bad = uint64(o.Ref())
		}
		return ok
	})
	return ok, bad
}

// ValidateOrRestart aborts and restarts the transaction if it is doomed.
func (tx *Txn) ValidateOrRestart() {
	if ok, bad := tx.validate(); !ok {
		tx.blameObj = bad
		tx.Restart()
	}
}

func (tx *Txn) rollbackTo(undoLen, writesLen, compLen int) {
	// Replay the undo log in reverse: later entries may shadow earlier ones,
	// so reverse order restores the oldest values last.
	for i := len(tx.undo) - 1; i >= undoLen; i-- {
		e := tx.undo[i]
		for j := 0; j < e.n; j++ {
			e.obj.StoreSlot(e.base+j, e.vals[j])
		}
	}
	tx.undo = tx.undo[:undoLen]
	// Release records acquired after the savepoint, bumping versions so
	// optimistic readers of our speculative state fail validation (the
	// bump is load-bearing: without it, a reader that sampled the record,
	// read a speculative slot value, and re-checked the record could pass
	// its double-check against the restored word — an ABA).
	for i := len(tx.writes) - 1; i >= writesLen; i-- {
		e := tx.writes[i]
		e.obj.Rec.ReleaseOwned(e.version)
		tx.owned.Delete(e.obj)
		// Partial abort: the rollback above restored exactly the values the
		// enclosing transaction read before this record was acquired, so
		// refresh its read-set entry to the post-release version — otherwise
		// the parent would fail validation against its own nested abort and
		// retry forever.
		if _, ok := tx.reads.Get(e.obj); ok {
			tx.reads.Put(e.obj, e.version+1)
		}
	}
	tx.writes = tx.writes[:writesLen]
	// Run open-nesting compensations registered after the savepoint.
	for i := len(tx.comps) - 1; i >= compLen; i-- {
		tx.comps[i]()
	}
	tx.comps = tx.comps[:compLen]
}

func (tx *Txn) abort() {
	tx.rollbackTo(0, 0, 0)
	tx.status.Store(uint32(Aborted))
	tx.rt.Stats.Aborts.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvAbort, tx.id, tx.blameObj, 0, 0)
		if tx.blameObj != 0 {
			tr.Hot().BumpAbort(tx.blameObj)
		}
		tx.abortAt = time.Now()
	}
	tx.blameObj = 0
	tx.flushStats()
}

func (tx *Txn) commit() bool {
	if ok, bad := tx.validate(); !ok {
		tx.blameObj = bad
		return false
	}
	tx.status.Store(uint32(Committed))
	for _, e := range tx.writes {
		e.obj.Rec.ReleaseOwned(e.version)
	}
	tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvCommit, tx.id, 0, 0, 0)
		tr.ObserveCommit(time.Since(tx.beginAt))
	}
	tx.flushStats()
	if tx.rt.cfg.Quiescence {
		if tr := tx.tr; tr != nil {
			start := time.Now()
			tx.quiesce()
			tr.ObserveQuiesce(time.Since(start))
		} else {
			tx.quiesce()
		}
	}
	return true
}

// quiesce implements the Section 3.4 privatization guarantee: the committed
// transaction waits until every transaction that was active at its commit
// has finished or restarted, so that no doomed transaction can still access
// data this transaction privatized.
//
// A scanned descriptor may be recycled mid-wait; that is benign, because a
// later incarnation begins with a sequence number above commitSeq and so
// falls out of the wait condition.
func (tx *Txn) quiesce() {
	commitSeq := tx.rt.seq.Add(1)
	tx.rt.reg.forEach(func(other *Txn) bool {
		if other == tx {
			return true
		}
		for a := 0; Status(other.status.Load()) == Active && other.beginSeq.Load() < commitSeq; a++ {
			conflict.WaitAttempt(a, 0)
		}
		return true
	})
}

// waitForReadSetChange blocks until any object in the given read set
// changes version or becomes owned, implementing the retry operation. The
// caller passes the aborted transaction's own read set (which survives
// abort and is reset only on the next begin), so no snapshot copy is made.
func (rt *Runtime) waitForReadSetChange(rs *objset.VerSet) {
	if rs.Len() == 0 {
		return // retrying with an empty read set would block forever
	}
	for a := 0; ; a++ {
		changed := false
		rs.Range(func(o *objmodel.Object, ver uint64) bool {
			w := o.Rec.Load()
			if txrec.IsPrivate(w) {
				return true
			}
			if !txrec.IsShared(w) || txrec.Version(w) != ver {
				changed = true
				return false
			}
			return true
		})
		if changed {
			return
		}
		conflict.WaitAttempt(a, 0)
	}
}

// Atomic executes body as a transaction. With parent == nil it is a
// top-level atomic block: the body is (re-)executed until it commits. With
// a non-nil parent it is a closed-nested block: a savepoint is taken and a
// body error rolls the parent back to the savepoint (partial abort) while
// conflicts abort and restart the outermost transaction.
//
// The body's error return aborts: ErrAborted (or any wrapped error)
// discards the transaction's effects and is returned to the caller.
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return rt.nested(parent, body)
	}
	tx := rt.getTxn()
	defer rt.putTxn(tx)
	for attempt := 0; ; attempt++ {
		tx.attempt = attempt
		tx.begin()
		err, sig := rt.run(tx, body)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			if tx.commit() {
				return nil
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			tx.abort()
			// The read set survives abort (begin resets it on the next
			// attempt), so wait on it in place instead of copying it into a
			// fresh snapshot map on every retry.
			rt.waitForReadSetChange(&tx.reads)
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

// run executes the body, converting control-flow panics into signals. A
// foreign panic raised while the transaction is doomed (invalid read set)
// is treated as a restart — speculative execution on inconsistent data may
// fault in arbitrary ways, exactly the hazard quiescence-based systems
// worry about (Section 3.4); a managed runtime converts the fault into an
// abort.
func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		if !tx.Validate() {
			sig = sigRestart
			return
		}
		// A genuine fault in a consistent transaction: abort (roll back and
		// release every owned record) before propagating, so other threads
		// are not left blocking on records owned by a dead transaction.
		tx.abort()
		panic(r)
	}()
	return body(tx), 0
}

func (rt *Runtime) nested(parent *Txn, body func(*Txn) error) error {
	sp := savepoint{
		undoLen:   len(parent.undo),
		writesLen: len(parent.writes),
		compLen:   len(parent.comps),
	}
	parent.saves = append(parent.saves, sp)
	defer func() { parent.saves = parent.saves[:len(parent.saves)-1] }()
	if err := body(parent); err != nil {
		// Partial abort: roll the parent back to the savepoint.
		parent.rollbackTo(sp.undoLen, sp.writesLen, sp.compLen)
		return err
	}
	return nil
}

// AtomicOpen executes body as an open-nested transaction: an independent
// transaction that commits (or aborts) immediately, regardless of the
// enclosing transaction's fate. If parent is non-nil and the open-nested
// transaction commits, compensation (if non-nil) is registered to run if
// the parent later aborts.
func (rt *Runtime) AtomicOpen(parent *Txn, body func(*Txn) error, compensation func()) error {
	err := rt.Atomic(nil, body)
	if err == nil && parent != nil && compensation != nil {
		parent.comps = append(parent.comps, compensation)
	}
	return err
}

// ActiveTransactions returns the number of registered descriptors whose
// status is Active (for tests and monitoring). Scans the sharded slot
// array without allocating.
func (rt *Runtime) ActiveTransactions() int {
	n := 0
	rt.reg.forEach(func(tx *Txn) bool {
		if Status(tx.status.Load()) == Active {
			n++
		}
		return true
	})
	return n
}
