// Package stm implements the eager-versioning software transactional memory
// at the core of the paper's system (Section 3): McRT-STM-style optimistic
// concurrency control using versioning for reads and strict two-phase
// locking with eager versioning (in-place update + undo log) for writes.
//
// Each object's transaction record (package txrec) arbitrates access. A
// transaction opens an object for reading by sampling its version and
// validating the whole read set at commit; it opens an object for writing
// by CAS-ing the record from Shared to Exclusive, updating memory in place,
// and logging the old value for rollback. Commit validates the read set and
// releases owned records with incremented versions; abort replays the undo
// log in reverse and releases with incremented versions so that optimistic
// readers of intermediate state fail validation.
//
// The package also provides the features the paper's system supports:
// closed nesting (savepoints), open nesting with compensation actions,
// user-initiated retry, a quiescence mode (Section 3.4), configurable
// undo-log granularity (to reproduce the Section 2.4 anomalies), and
// integration with dynamic escape analysis (Section 4): accesses to
// private objects skip synchronization, and writing a reference into a
// public object immediately publishes the referenced private subgraph.
//
// The hot path is engineered to scale with thread count (the property the
// paper's Section 7 results hinge on): statistics are accumulated in plain
// per-descriptor counters and flushed into sharded aggregates only at
// commit/abort, descriptors are pooled so a top-level Atomic allocates
// nothing in steady state, read/owned sets use an inline-array fast path
// (package objset), and the active-transaction registry is a fixed sharded
// slot array so begin/end cost one CAS and one store.
package stm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/objset"
	"repro/internal/stats"
	"repro/internal/stmapi"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// Status is the lifecycle state of a transaction attempt (shared with the
// lazy runtime through stmapi, so the numeric encodings agree).
type Status = stmapi.Status

// Transaction statuses.
const (
	Active    = stmapi.Active
	Committed = stmapi.Committed
	Aborted   = stmapi.Aborted
)

// MaxGranularity is the largest supported version-management granularity in
// slots.
const MaxGranularity = stmapi.MaxGranularity

// Config parameterizes a Runtime. The cross-runtime knobs (Granularity,
// Quiescence, Handler, SelfAbortAfter) live in the embedded
// stmapi.CommonConfig; DEA is eager-specific.
type Config struct {
	stmapi.CommonConfig

	// DEA enables dynamic escape analysis cooperation: transactional
	// accesses to private objects skip record synchronization and undo
	// logging still applies; transactional writes of references into public
	// objects publish the referenced subgraph immediately (Section 4).
	DEA bool
}

// DefaultSelfAbortAfter is the default Config.SelfAbortAfter.
const DefaultSelfAbortAfter = stmapi.DefaultSelfAbortAfter

// Stats aggregates runtime counters for experiments. Each counter is
// sharded across cache lines (package stats); transactions accumulate
// deltas in descriptor-local fields and flush them at commit/abort, so no
// per-access global atomic exists anywhere on the hot path.
type Stats struct {
	Starts      stats.Counter // transaction attempts begun
	Commits     stats.Counter
	Aborts      stats.Counter // aborts of any cause (conflict, validation, retry)
	UserRetries stats.Counter // user-initiated retry operations
	TxnReads    stats.Counter
	TxnWrites   stats.Counter
	SelfAborts  stats.Counter // contention-policy SelfAbort decisions taken
	DoomsIssued stats.Counter // contention-policy AbortOther decisions that marked a victim

	// Robustness counters (recovery and irrevocability).
	ReaperSteals    stats.Counter // dead transactions reclaimed (reaper or inline waiter steal)
	Escalations     stats.Counter // atomic blocks escalated to irrevocable after K aborts
	IrrevocableTxns stats.Counter // transactions that finished while irrevocable
	IrrevocableNs   stats.Counter // cumulative irrevocable-token hold time, nanoseconds

	// Commit-clock validation counters.
	ClockAdvances       stats.Counter // successful clock-increment CASes at commit
	FastpathValidations stats.Counter // validations satisfied by the clock compare
	FallbackWalks       stats.Counter // validations that walked the read set

	// Adaptive-granularity counters.
	GranPromotions stats.Counter // objects promoted to slot-level versioning
	GranDemotions  stats.Counter // objects demoted back to the configured span
}

// StatsSnapshot is a point-in-time copy of every Stats counter as plain
// values, shared with the lazy runtime through stmapi so drivers consume
// either runtime's statistics uniformly.
type StatsSnapshot = stmapi.StatsSnapshot

// Snapshot sums every counter's shards. Like Counter.Load it is not an
// atomic cut across counters, which is the usual statistics contract.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:      s.Starts.Load(),
		Commits:     s.Commits.Load(),
		Aborts:      s.Aborts.Load(),
		UserRetries: s.UserRetries.Load(),
		TxnReads:    s.TxnReads.Load(),
		TxnWrites:   s.TxnWrites.Load(),
		SelfAborts:  s.SelfAborts.Load(),
		DoomsIssued: s.DoomsIssued.Load(),

		ReaperSteals:    s.ReaperSteals.Load(),
		Escalations:     s.Escalations.Load(),
		IrrevocableTxns: s.IrrevocableTxns.Load(),
		IrrevocableNs:   s.IrrevocableNs.Load(),

		ClockAdvances:       s.ClockAdvances.Load(),
		FastpathValidations: s.FastpathValidations.Load(),
		FallbackWalks:       s.FallbackWalks.Load(),
		GranPromotions:      s.GranPromotions.Load(),
		GranDemotions:       s.GranDemotions.Load(),
	}
}

// regSlots is the capacity of the fixed active-transaction slot array.
// Power of two. More than regSlots concurrently active transactions spill
// into a sync.Map overflow (correct but slower; unreachable in the paper's
// thread sweeps).
const regSlots = 256

// regSlot is one registry slot, padded to a cache line so neighbouring
// claims and releases do not false-share.
type regSlot struct {
	p atomic.Pointer[Txn]
	_ [56]byte
}

// registry tracks in-flight transaction descriptors. Claiming is a CAS
// into an id-hashed slot with linear probing; releasing is a single nil
// store. Scans (quiescence, ActiveTransactions) walk the array without
// allocating — unlike the sync.Map it replaces, whose Store/Delete
// allocated on every transaction and whose Range boxed every entry.
type registry struct {
	slots    [regSlots]regSlot
	overflow sync.Map // id -> *Txn, only when the slot array is full
}

func (r *registry) add(tx *Txn) {
	h := int(tx.id)
	for i := 0; i < regSlots; i++ {
		s := &r.slots[(h+i)&(regSlots-1)]
		if s.p.Load() == nil && s.p.CompareAndSwap(nil, tx) {
			tx.slot = (h + i) & (regSlots - 1)
			return
		}
	}
	tx.slot = -1
	r.overflow.Store(tx.id, tx)
}

func (r *registry) remove(tx *Txn) {
	if tx.slot >= 0 {
		r.slots[tx.slot].p.Store(nil)
		return
	}
	r.overflow.Delete(tx.id)
}

// forEach calls f for every registered descriptor until f returns false.
func (r *registry) forEach(f func(*Txn) bool) {
	for i := range r.slots {
		if tx := r.slots[i].p.Load(); tx != nil {
			if !f(tx) {
				return
			}
		}
	}
	r.overflow.Range(func(_, v any) bool { return f(v.(*Txn)) })
}

// findStamp returns the live descriptor whose current incarnation ID is id,
// or nil. Descriptors are pooled, so a pointer read from a slot may belong
// to a later transaction by the time its stamp is loaded; the stamp check
// filters that race (IDs are never reused), making the lookup safe — at
// worst it misses a departing transaction, which callers treat as "owner no
// longer active".
func (r *registry) findStamp(id uint64) *Txn {
	var found *Txn
	r.forEach(func(tx *Txn) bool {
		if tx.stamp.Load() == id {
			found = tx
			return false
		}
		return true
	})
	return found
}

// Runtime is an STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg      Config
	handler  conflict.Handler
	policy   conflict.Policy // handler adapted (or asserted) to the policy interface
	nextID   atomic.Uint64
	seq      atomic.Uint64 // global begin/commit sequence for quiescence
	reg      registry      // active-transaction registry
	pool     sync.Pool     // idle *Txn descriptors
	tracer   atomic.Pointer[trace.Tracer]
	injector atomic.Pointer[faultinject.Injector]
	sink     atomic.Pointer[sinkBox]

	// Commit-clock validation state: the heap's clock (cached to skip a
	// pointer hop per validation), whether clock validation is enabled, and
	// the handler asserted to the stale-abort observer interface (once, at
	// New — never on the abort path).
	clock    *objmodel.CommitClock
	clockOn  bool
	staleObs conflict.StaleObserver

	// Adaptive-granularity state: an immutable promotion table swapped
	// copy-on-write under granMu. Transactions sample the pointer once at
	// begin, so a table swap never changes the span arithmetic of an
	// attempt already in flight.
	granTab atomic.Pointer[granTable]
	granMu  sync.Mutex

	// irrevToken is the runtime's single irrevocable-transaction token: the
	// owner ID of the current irrevocable transaction, 0 when free. Exactly
	// one transaction may be irrevocable at a time (Section: at most one
	// transaction can be guaranteed never to abort, because two such
	// transactions could deadlock on each other's records).
	irrevToken atomic.Uint64
}

// SetTracer installs (or, with nil, removes) the event tracer. Descriptors
// sample the tracer when a top-level Atomic begins, so transactions already
// in flight keep their previous setting. With no tracer installed the hot
// path pays one nil check per emission point and nothing else.
func (rt *Runtime) SetTracer(t *trace.Tracer) { rt.tracer.Store(t) }

// Tracer returns the installed tracer, or nil.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer.Load() }

// SetInjector installs (or, with nil, removes) a fault injector. Like the
// tracer it is sampled once per top-level Atomic and guarded by a single nil
// check per injection point, so the uninstrumented hot path is unchanged.
func (rt *Runtime) SetInjector(in *faultinject.Injector) { rt.injector.Store(in) }

// sinkBox wraps a CommitSink so it can live in an atomic.Pointer (which
// needs a concrete element type) regardless of the sink's dynamic type.
type sinkBox struct{ s stmapi.CommitSink }

// SetCommitSink installs (or, with nil, removes) the durable commit sink
// (stmapi.DurableRuntime). Sampled once per top-level Atomic like the
// tracer; transactions in flight keep their previous setting.
func (rt *Runtime) SetCommitSink(s stmapi.CommitSink) {
	if s == nil {
		rt.sink.Store(nil)
		return
	}
	rt.sink.Store(&sinkBox{s: s})
}

// New creates a Runtime over heap with the given configuration. Invalid
// configurations (granularity outside [1, MaxGranularity], negative
// self-abort threshold) are rejected here with a panic rather than
// misbehaving later.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if err := cfg.Normalize(); err != nil {
		panic("stm: " + err.Error())
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	rt := &Runtime{Heap: heap, cfg: cfg, handler: h, policy: conflict.AsPolicy(h)}
	rt.clock = heap.Clock()
	rt.clockOn = !cfg.NoCommitClock
	rt.staleObs, _ = h.(conflict.StaleObserver)
	// Hot allocation sites from an elision manifest pre-seed the adaptive
	// granularity table: their objects get slot-level records from birth
	// instead of waiting for the hotspot attribution to notice them. The
	// observer only fires for manifest-matched allocations, so this costs
	// nothing when no manifest is loaded.
	heap.AddAllocObserver(func(o *objmodel.Object, site *objmodel.ManifestSite) {
		if site.Hot && site.Granularity == "slot" {
			rt.PromoteObject(o)
		}
	})
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// control-flow signals raised inside transaction bodies.
type signal uint8

const (
	sigRestart signal = iota + 1 // conflict or explicit restart: abort and re-execute
	sigRetry                     // user retry: abort, wait for read set change, re-execute
	sigCancel                    // context cancelled: abort and return ctx.Err()
)

type txSignal struct {
	s  signal
	tx *Txn
}

// ErrAborted is returned by Atomic when the body requests a permanent abort
// by returning it: the transaction rolls back and Atomic returns ErrAborted
// without retrying.
var ErrAborted = errors.New("stm: transaction aborted by user")

type ownedEntry struct {
	obj     *objmodel.Object
	version uint64 // version observed in the Shared word we replaced
}

type undoEntry struct {
	obj  *objmodel.Object
	base int // first slot of the span
	n    int // number of slots captured
	vals [MaxGranularity]uint64
}

type savepoint struct {
	undoLen   int
	writesLen int
	compLen   int
}

// Txn is a transaction descriptor. A Txn is confined to the goroutine that
// runs the atomic body; only status and beginSeq are read by other threads.
// Descriptors are pooled: outside an Atomic call a descriptor may be reused
// by any goroutine, so user code must not retain one past the body.
type Txn struct {
	rt       *Runtime
	id       uint64
	slot     int // registry slot index, -1 when in overflow
	status   atomic.Uint32
	beginSeq atomic.Uint64

	reads   objset.VerSet // first-read version per object
	owned   objset.VerSet // object -> version saved at acquire
	writes  []ownedEntry
	undo    []undoEntry
	saves   []savepoint
	comps   []func() // open-nesting compensations, run on abort in reverse
	attempt int

	// Commit-clock snapshot: the clock value this attempt's reads are
	// consistent with. Every read at version <= rv is covered; a read above
	// rv extends the snapshot (re-validating the read set). Meaningful only
	// when the runtime's clock validation is on.
	rv uint64

	// wrote records whether this attempt stored in place to a shared
	// (record-acquired) object; private-object writes leave it false. Commit
	// gates the clock advance on it: irrevocable transactions append
	// pessimistic READ claims to tx.writes without changing any value, and
	// releasing those unchanged needs no snapshot invalidation.
	wrote bool

	// gran is the adaptive-granularity promotion table sampled at begin;
	// nil when the configured granularity is 1 (nothing to promote) or no
	// object has been promoted.
	gran *granTable

	// Arbitration state. stamp mirrors id but is readable cross-thread
	// (contention policies look up an owner's descriptor by ID); doomed is
	// the advisory abort-other flag a winning transaction sets — the victim
	// notices at its next access, conflict wait, or commit and restarts;
	// karma accumulates invested work across aborted attempts of the same
	// atomic block for priority-based policies.
	stamp  atomic.Uint64
	doomed atomic.Bool
	karma  atomic.Int64

	// Recovery state. hb is the epoch heartbeat the reaper watches (bumped at
	// begin and on conflict-wait slow paths — never on the access hot path);
	// dead is the death certificate: a release-store of true publishes every
	// prior write of the dying goroutine (undo log, writes list) to any
	// reaper that acquires it, and is the ONLY condition under which another
	// thread may touch this descriptor; reaping serializes reclaimers.
	hb      atomic.Uint64
	dead    atomic.Bool
	reaping atomic.Bool

	// Irrevocability state. irrevocable is goroutine-local (hot-path checks
	// by the owner); irrevStamp is its cross-thread mirror (policies and
	// doom() consult it); irrevAt feeds the token-hold-time metrics.
	irrevocable bool
	irrevStamp  atomic.Bool
	irrevAt     time.Time

	// ctx is the cancellation context installed by AtomicCtx; nil for plain
	// Atomic, in which case no cancellation checks run anywhere.
	ctx context.Context

	// fi is the fault injector sampled at getTxn (nil-check hook like tr).
	fi *faultinject.Injector

	// sink is the commit sink sampled at getTxn (nil-check hook like tr);
	// redo is its scratch record, reused across commits.
	sink stmapi.CommitSink
	redo []stmapi.RedoWrite

	// Statistics deltas accumulated without synchronization and flushed to
	// the runtime's sharded counters at commit/abort.
	nStarts     int64
	nReads      int64
	nWrites     int64
	nRetries    int64
	nSelfAborts int64
	nDooms      int64
	nClockAdv   int64
	nFastpath   int64
	nWalks      int64

	// Tracing state. tr is sampled from the runtime once per top-level
	// Atomic; nil (the default) disables every emission point behind one
	// predictable branch. blameObj is the handle of the object a pending
	// abort is attributed to; beginAt/abortAt feed the commit-latency and
	// abort-to-retry histograms.
	tr       *trace.Tracer
	blameObj uint64
	beginAt  time.Time
	abortAt  time.Time
}

// ID returns the transaction's owner ID as encoded in acquired records.
func (tx *Txn) ID() uint64 { return tx.id }

// Status returns the descriptor's current status.
func (tx *Txn) Status() Status { return Status(tx.status.Load()) }

// Attempt returns the 0-based retry attempt of the current top-level
// execution (0 on the first try).
func (tx *Txn) Attempt() int { return tx.attempt }

// getTxn fetches a pooled descriptor (or allocates the first time), assigns
// a fresh owner ID, and registers it. The fresh ID per top-level Atomic
// keeps record-ownership comparisons ABA-free across descriptor reuse.
func (rt *Runtime) getTxn() *Txn {
	tx, _ := rt.pool.Get().(*Txn)
	if tx == nil {
		tx = &Txn{rt: rt}
	}
	tx.id = rt.nextID.Add(1)
	tx.tr = rt.tracer.Load()
	tx.fi = rt.injector.Load()
	tx.sink = nil
	if b := rt.sink.Load(); b != nil {
		tx.sink = b.s
	}
	tx.blameObj = 0
	tx.abortAt = time.Time{}
	tx.doomed.Store(false)
	tx.karma.Store(0)
	tx.dead.Store(false)
	tx.reaping.Store(false)
	tx.irrevocable = false
	tx.irrevStamp.Store(false)
	// Publish the stamp before the descriptor becomes reachable through the
	// registry, so policy lookups never observe a stale incarnation's ID.
	tx.stamp.Store(tx.id)
	rt.reg.add(tx)
	return tx
}

// putTxn unregisters the descriptor, drops every object reference it holds
// (so pooled descriptors never pin dead heap objects or leak state into
// their next incarnation), and returns it to the pool.
func (rt *Runtime) putTxn(tx *Txn) {
	rt.reg.remove(tx)
	tx.reads.Reset()
	tx.owned.Reset()
	clear(tx.writes)
	tx.writes = tx.writes[:0]
	clear(tx.undo)
	tx.undo = tx.undo[:0]
	clear(tx.comps)
	tx.comps = tx.comps[:0]
	tx.saves = tx.saves[:0]
	tx.ctx = nil
	tx.fi = nil
	tx.sink = nil
	tx.redo = tx.redo[:0]
	tx.gran = nil
	rt.pool.Put(tx)
}

func (tx *Txn) begin() {
	tx.status.Store(uint32(Active))
	tx.doomed.Store(false) // a doom aimed at a finished attempt is consumed
	tx.hb.Add(1)           // heartbeat: the reaper sees a fresh epoch
	tx.beginSeq.Store(tx.rt.seq.Add(1))
	tx.reads.Reset()
	tx.owned.Reset()
	tx.writes = tx.writes[:0]
	tx.undo = tx.undo[:0]
	tx.saves = tx.saves[:0]
	tx.comps = tx.comps[:0]
	tx.wrote = false
	tx.nStarts++
	if tx.rt.clockOn {
		tx.rv = tx.rt.clock.Load()
	}
	tx.gran = nil
	if tx.rt.cfg.Granularity > 1 {
		tx.gran = tx.rt.granTab.Load()
	}
	if tr := tx.tr; tr != nil {
		tx.beginAt = time.Now()
		if !tx.abortAt.IsZero() {
			tr.ObserveAbortGap(tx.beginAt.Sub(tx.abortAt))
			tx.abortAt = time.Time{}
		}
		tr.Record(trace.EvBegin, tx.id, 0, 0, 0)
	}
}

// flushStats drains the descriptor-local counters into the sharded
// aggregates. Called at commit and abort — the transaction boundaries where
// other threads may legitimately observe the totals.
func (tx *Txn) flushStats() {
	s := &tx.rt.Stats
	hint := int(tx.id)
	if tx.nStarts != 0 {
		s.Starts.AddShard(hint, tx.nStarts)
		tx.nStarts = 0
	}
	if tx.nReads != 0 {
		s.TxnReads.AddShard(hint, tx.nReads)
		tx.nReads = 0
	}
	if tx.nWrites != 0 {
		s.TxnWrites.AddShard(hint, tx.nWrites)
		tx.nWrites = 0
	}
	if tx.nRetries != 0 {
		s.UserRetries.AddShard(hint, tx.nRetries)
		tx.nRetries = 0
	}
	if tx.nSelfAborts != 0 {
		s.SelfAborts.AddShard(hint, tx.nSelfAborts)
		tx.nSelfAborts = 0
	}
	if tx.nDooms != 0 {
		s.DoomsIssued.AddShard(hint, tx.nDooms)
		tx.nDooms = 0
	}
	if tx.nClockAdv != 0 {
		s.ClockAdvances.AddShard(hint, tx.nClockAdv)
		tx.nClockAdv = 0
	}
	if tx.nFastpath != 0 {
		s.FastpathValidations.AddShard(hint, tx.nFastpath)
		tx.nFastpath = 0
	}
	if tx.nWalks != 0 {
		s.FallbackWalks.AddShard(hint, tx.nWalks)
		tx.nWalks = 0
	}
}

// Restart aborts the transaction and re-executes it from the beginning of
// the outermost atomic block. Exposed so tests and litmus programs can
// force the "transaction aborts for some reason" steps of the paper's
// Figure 3 examples, and used internally when an access discovers the
// transaction is doomed.
func (tx *Txn) Restart() {
	panic(txSignal{sigRestart, tx})
}

// Retry implements the user-initiated retry operation: the transaction
// aborts and blocks until some location in its read set changes, then
// re-executes.
func (tx *Txn) Retry() {
	tx.nRetries++
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvRetry, tx.id, 0, 0, 0)
	}
	panic(txSignal{sigRetry, tx})
}

func (tx *Txn) conflictWait(o *objmodel.Object, kind conflict.Kind, attempt int, rec txrec.Word) {
	tx.hb.Add(1) // slow path: prove liveness to the reaper while we wait
	if tr := tx.tr; tr != nil {
		ref := uint64(o.Ref())
		var owner uint64
		if txrec.IsExclusive(rec) {
			owner = txrec.Owner(rec) // Ver carries the owning txn ID: the waits-for edge
		}
		tr.Record(trace.EvConflict, tx.id, ref, 0, owner)
		tr.Hot().BumpConflict(ref)
	}
	if tx.irrevocable {
		// An irrevocable transaction can neither restart nor lose an
		// arbitration: skip cancellation, doom, and self-abort caps; doom any
		// live owner directly (the token is singular, so the owner is never
		// itself irrevocable) and wait for the record to free. A dead owner is
		// reclaimed on the spot.
		if txrec.IsExclusive(rec) {
			if victim := tx.rt.reg.findStamp(txrec.Owner(rec)); victim != nil && victim != tx {
				if victim.dead.Load() {
					tx.rt.reapTxn(victim)
					return
				}
				if victim.doomed.CompareAndSwap(false, true) {
					tx.nDooms++
					if tr := tx.tr; tr != nil {
						tr.Record(trace.EvDoom, tx.id, uint64(o.Ref()), 0, txrec.Owner(rec))
					}
				}
			}
		}
		conflict.WaitAttempt(attempt, 0)
		return
	}
	if tx.ctx != nil && tx.ctx.Err() != nil {
		panic(txSignal{sigCancel, tx})
	}
	if tx.doomed.Load() {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if attempt >= tx.rt.cfg.SelfAbortAfter {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	tx.karma.Add(1) // enduring a conflict earns priority under Karma-style policies
	info := conflict.Info{
		Kind: kind, Attempt: attempt, Record: rec,
		Self: tx.id, SelfPrio: tx.karma.Load(),
	}
	if txrec.IsExclusive(rec) {
		info.Owner = txrec.Owner(rec)
		if victim := tx.rt.reg.findStamp(info.Owner); victim != nil {
			if victim.dead.Load() {
				// The owner's goroutine died holding the record: steal it
				// (undo replay + release) and re-probe instead of waiting on
				// a lock nobody will ever release.
				tx.rt.reapTxn(victim)
				return
			}
			info.OwnerActive = true
			info.OwnerPrio = victim.karma.Load()
			info.OwnerIrrevocable = victim.irrevStamp.Load()
		}
	}
	switch tx.rt.policy.Resolve(info) {
	case conflict.Wait:
		// The policy performed its own backoff; re-probe the record.
	case conflict.SelfAbort:
		tx.nSelfAborts++
		if tr := tx.tr; tr != nil {
			tr.Record(trace.EvSelfAbort, tx.id, uint64(o.Ref()), 0, 0)
		}
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	case conflict.AbortOther:
		if tx.rt.doom(info.Owner) {
			tx.nDooms++
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvDoom, tx.id, uint64(o.Ref()), 0, info.Owner)
			}
		}
		// Camp on the record with yields instead of exponential sleeps:
		// arbitration already decided this transaction wins, and the victim
		// releases at its next access or commit. Sleeping past that release
		// lets a third party (or the restarting victim itself) re-acquire
		// and force another doom round — the flight recorder shows this as
		// long consecutive doomed-by chains against whoever holds the record.
		a := attempt
		if a > 9 {
			a = 9 // clamp into WaitAttempt's spin/yield bands; never sleep
		}
		conflict.WaitAttempt(a, 0)
	}
}

// doom marks the live transaction with the given ID for abort-other: its
// doom flag is set and it restarts at its next access, conflict wait, or
// commit. Purely advisory — the victim's own thread performs the rollback,
// so the txrec state machine never sees a forcible release. Reports whether
// a live descriptor was marked (false means the owner already finished, in
// which case the record is released or about to be).
func (rt *Runtime) doom(id uint64) bool {
	if id == 0 {
		return false
	}
	if victim := rt.reg.findStamp(id); victim != nil {
		if victim.irrevStamp.Load() {
			// Irrevocable transactions are never doomed — that is the whole
			// guarantee. The caller keeps waiting; the token holder finishes.
			return false
		}
		victim.doomed.Store(true)
		return true
	}
	return false
}

// Read opens object o for reading at slot and returns the value
// (open-for-read, Section 3.1). Private objects (dynamic escape analysis)
// are read directly. Reads of objects owned by other transactions or by
// non-transactional writers invoke the conflict manager and retry.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.nReads++
	if tx.doomed.Load() && !tx.irrevocable {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
		// Every access is a cancellation point, so a context cancelled
		// mid-body (in particular a nested block's scoped context) is
		// noticed without needing a conflict to arise first.
		panic(txSignal{sigCancel, tx})
	}
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Visible to this thread only; no logging or validation needed.
			// Still traced: the soundness oracle audits private (elided)
			// accesses against the manifest, and they are invisible to it
			// any other way.
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
			}
			return o.LoadSlot(slot)
		case txrec.IsExclusive(w):
			if txrec.Owner(w) == tx.id {
				if tr := tx.tr; tr != nil {
					tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, 0)
				}
				return o.LoadSlot(slot)
			}
			tx.conflictWait(o, conflict.TxnRead, attempt, w)
		case txrec.IsExclusiveAnon(w):
			// A non-transactional writer holds the record.
			tx.conflictWait(o, conflict.TxnRead, attempt, w)
		default: // shared
			if tx.irrevocable {
				// Pessimistic read: acquire the record like a write, so commit
				// validation is structurally unable to fail (no abort is legal
				// past the switch). Objects read before the switch are already
				// Exclusive(self) — lockReadSet upgraded them — so they take
				// the IsExclusive branch above, never this one.
				if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
					continue
				}
				ver := txrec.Version(w)
				tx.writes = append(tx.writes, ownedEntry{o, ver})
				tx.owned.Put(o, ver)
				tx.reads.Put(o, ver)
				if tr := tx.tr; tr != nil {
					tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
				}
				return o.LoadSlot(slot)
			}
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				// Record changed under us; retry the sample.
				continue
			}
			ver := txrec.Version(w)
			if tx.rt.clockOn && ver > tx.rv {
				// The version postdates our clock snapshot: the value may be
				// newer than everything read so far. Extend the snapshot —
				// walk-validate the read set against a fresh clock value — or
				// restart if the read set is already stale.
				tx.extendSnapshot(o, ver)
			}
			if prev, ok := tx.reads.Get(o); ok {
				if prev != ver {
					// We already read this object at an older version: the
					// transaction is doomed; abort eagerly.
					tx.blameObj = uint64(o.Ref())
					tx.Restart()
				}
			} else {
				tx.reads.Put(o, ver)
			}
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvRead, tx.id, uint64(o.Ref()), slot, ver)
			}
			return v
		}
	}
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

func (tx *Txn) logUndo(o *objmodel.Object, slot int) {
	g := tx.effGran(o)
	base := slot &^ (g - 1)
	e := undoEntry{obj: o, base: base}
	for i := 0; i < g && base+i < len(o.Slots); i++ {
		e.vals[i] = o.LoadSlot(base + i)
		e.n++
	}
	tx.undo = append(tx.undo, e)
}

func (tx *Txn) maybePublish(o *objmodel.Object, slot int, v uint64) {
	// An elision manifest mints private objects even with DEA off, so the
	// publication safety net must stay armed whenever one is loaded.
	if v == 0 || !o.IsRefSlot(slot) || !(tx.rt.cfg.DEA || tx.rt.Heap.HasManifest()) {
		return
	}
	// The container is public (callers ensure this); publish the referenced
	// subgraph immediately — even before commit, a doomed transaction in
	// another thread may access objects published by this write (Section 4).
	tx.rt.Heap.PublishRef(objmodel.Ref(v))
}

// Write opens object o for writing at slot and stores v in place
// (open-for-write with strict two-phase locking and eager versioning).
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	tx.nWrites++
	if tx.doomed.Load() && !tx.irrevocable {
		tx.blameObj = uint64(o.Ref())
		tx.Restart()
	}
	if tx.ctx != nil && !tx.irrevocable && tx.ctx.Err() != nil {
		panic(txSignal{sigCancel, tx}) // accesses are cancellation points
	}
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Thread-local: no locking, but rollback must still restore it.
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, 0)
			}
			return
		case txrec.IsExclusive(w):
			if txrec.Owner(w) != tx.id {
				tx.conflictWait(o, conflict.TxnWrite, attempt, w)
				continue
			}
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			tx.wrote = true
			tx.maybePublish(o, slot, v)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, 0)
			}
			return
		case txrec.IsExclusiveAnon(w):
			tx.conflictWait(o, conflict.TxnWrite, attempt, w)
		default: // shared: acquire
			if fi := tx.fi; fi != nil {
				switch fi.Fire(faultinject.PreAcquire, tx.id) {
				case faultinject.Abort:
					if !tx.irrevocable {
						tx.blameObj = uint64(o.Ref())
						tx.Restart()
					}
				case faultinject.Crash:
					if !tx.irrevocable {
						// Simulated thread death before the CAS: nothing is owned
						// for this object yet; run's recover performs the abort.
						panic(faultinject.CrashError{Point: faultinject.PreAcquire, Txn: tx.id})
					}
				case faultinject.Orphan:
					// Goroutine dies with no cleanup at all: records stay held
					// until a reaper or a waiting contender steals them.
					tx.die(faultinject.PreAcquire)
				}
			}
			if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
				continue
			}
			ver := txrec.Version(w)
			tx.writes = append(tx.writes, ownedEntry{o, ver})
			tx.owned.Put(o, ver)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvLockAcquire, tx.id, uint64(o.Ref()), slot, ver)
			}
			if prev, ok := tx.reads.Get(o); ok && prev != ver {
				// Object changed between our read and this acquire: doomed.
				tx.blameObj = uint64(o.Ref())
				tx.Restart()
			}
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			tx.wrote = true
			tx.maybePublish(o, slot, v)
			if tr := tx.tr; tr != nil {
				tr.Record(trace.EvWrite, tx.id, uint64(o.Ref()), slot, ver)
			}
			if fi := tx.fi; fi != nil {
				switch fi.Fire(faultinject.PostAcquire, tx.id) {
				case faultinject.Abort:
					if !tx.irrevocable {
						// The record is ours and the old value is logged; the
						// ordinary restart path replays the undo entry and
						// releases with a version bump.
						tx.blameObj = uint64(o.Ref())
						tx.Restart()
					}
				case faultinject.Crash:
					if !tx.irrevocable {
						// Crash while owning a record mid-update: run's recover
						// aborts (rollback + release) before propagating, exactly
						// the cleanup a managed runtime performs for a dead thread.
						panic(faultinject.CrashError{Point: faultinject.PostAcquire, Txn: tx.id})
					}
				case faultinject.Orphan:
					// Dies owning the record mid-update: the reaper must replay
					// the undo entry just logged before releasing.
					tx.die(faultinject.PostAcquire)
				}
			}
			return
		}
	}
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// Validate re-checks the read set and reports whether the transaction is
// still consistent. The VM calls this periodically so that doomed
// transactions (which have read data speculatively written by others)
// abort promptly instead of looping or faulting.
func (tx *Txn) Validate() bool {
	ok, _ := tx.validate()
	return ok
}

// validate re-checks the read set; on failure it also reports the handle
// of the first inconsistent object, for conflict attribution. Under
// commit-clock validation the fast path is a single compare: an unchanged
// clock proves no committed or non-transactional write happened anywhere
// on the heap since this transaction's snapshot, so no read-set entry can
// have changed (the transaction's own acquisitions never tick the clock
// and are checked against the owned set only when walking). Abort-path
// releases bump versions without ticking the clock, but they restore the
// values first, so a read set that passes the fast path is still
// value-equivalent to a consistent snapshot.
func (tx *Txn) validate() (bool, uint64) {
	if tx.rt.clockOn && tx.rt.clock.Load() == tx.rv {
		tx.nFastpath++
		return true, 0
	}
	tx.nWalks++
	return tx.walkValidate()
}

// walkValidate is the original O(|read set|) validation walk, used when
// the clock snapshot is stale (or clock validation is off).
func (tx *Txn) walkValidate() (bool, uint64) {
	ok := true
	var bad uint64
	tx.reads.Range(func(o *objmodel.Object, ver uint64) bool {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Only this thread could ever have seen it; trivially valid.
		case txrec.IsShared(w):
			if txrec.Version(w) != ver {
				ok = false
			}
		case txrec.IsExclusive(w) && txrec.Owner(w) == tx.id:
			if ov, _ := tx.owned.Get(o); ov != ver {
				ok = false
			}
		default:
			ok = false
		}
		if !ok {
			bad = uint64(o.Ref())
		}
		return ok
	})
	return ok, bad
}

// ValidateOrRestart aborts and restarts the transaction if it is doomed.
func (tx *Txn) ValidateOrRestart() {
	if ok, bad := tx.validate(); !ok {
		tx.failValidation(bad)
	}
}

// extendSnapshot handles a read that observed version ver above the clock
// snapshot rv: it raises the clock to cover ver (abort releases and
// anonymous releases push object versions past the clock, so waiting for
// a committer to catch the clock up could livelock), re-validates the
// read set against a fresh clock value, and on success adopts that value
// as the new snapshot. On failure the transaction restarts — it read
// something that changed since begin.
func (tx *Txn) extendSnapshot(o *objmodel.Object, ver uint64) {
	rt := tx.rt
	if tr := tx.tr; tr != nil {
		ref := uint64(o.Ref())
		tr.Record(trace.EvExtend, tx.id, ref, 0, ver)
		tr.Hot().BumpValidation(ref)
	}
	rt.clock.Raise(ver)
	newRv := rt.clock.Load()
	tx.nWalks++
	if ok, bad := tx.walkValidate(); !ok {
		tx.failValidation(bad)
	}
	tx.rv = newRv
}

// failValidation attributes a validation failure to obj and restarts,
// first notifying the contention handler if it observes stale aborts
// (conflict.StaleObserver). Unlike a HandleConflict call there is no
// decision to make — the transaction is already inconsistent — so the
// notification is purely for attribution and priority accounting.
func (tx *Txn) failValidation(bad uint64) {
	tx.notifyStale(bad)
	tx.blameObj = bad
	tx.Restart()
}

func (tx *Txn) notifyStale(bad uint64) {
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvValidation, tx.id, bad, tx.attempt, 0)
		tr.Hot().BumpValidation(bad)
	}
	if obs := tx.rt.staleObs; obs != nil {
		obs.ObserveValidationAbort(conflict.Info{
			Kind:     conflict.TxnValidation,
			Attempt:  tx.attempt,
			Obj:      bad,
			Self:     tx.id,
			SelfPrio: tx.karma.Load(),
		})
	}
}

func (tx *Txn) rollbackTo(undoLen, writesLen, compLen int) {
	// Replay the undo log in reverse: later entries may shadow earlier ones,
	// so reverse order restores the oldest values last.
	for i := len(tx.undo) - 1; i >= undoLen; i-- {
		e := tx.undo[i]
		for j := 0; j < e.n; j++ {
			e.obj.StoreSlot(e.base+j, e.vals[j])
		}
	}
	tx.undo = tx.undo[:undoLen]
	// Release records acquired after the savepoint, bumping versions so
	// optimistic readers of our speculative state fail validation (the
	// bump is load-bearing: without it, a reader that sampled the record,
	// read a speculative slot value, and re-checked the record could pass
	// its double-check against the restored word — an ABA).
	for i := len(tx.writes) - 1; i >= writesLen; i-- {
		e := tx.writes[i]
		e.obj.Rec.ReleaseOwned(e.version)
		tx.owned.Delete(e.obj)
		// Partial abort: the rollback above restored exactly the values the
		// enclosing transaction read before this record was acquired, so
		// refresh its read-set entry to the post-release version — otherwise
		// the parent would fail validation against its own nested abort and
		// retry forever.
		if _, ok := tx.reads.Get(e.obj); ok {
			tx.reads.Put(e.obj, e.version+1)
		}
	}
	tx.writes = tx.writes[:writesLen]
	// Run open-nesting compensations registered after the savepoint.
	for i := len(tx.comps) - 1; i >= compLen; i-- {
		tx.comps[i]()
	}
	tx.comps = tx.comps[:compLen]
}

func (tx *Txn) abort() {
	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PreRelease, tx.id) {
		case faultinject.Crash:
			// Crash on the abort path itself: complete the cleanup (with
			// injection disarmed, or the recursive abort would re-fire) so every
			// owned record is released, then surface the crash.
			tx.fi = nil
			tx.abort()
			panic(faultinject.CrashError{Point: faultinject.PreRelease, Txn: tx.id})
		case faultinject.Orphan:
			// Dies entering its own rollback: nothing is undone or released;
			// the reaper replays the whole undo log.
			tx.die(faultinject.PreRelease)
		}
	}
	// Work invested by the failed attempt converts into priority for the
	// next one (Karma-style policies): reads and writes not yet flushed
	// belong to this attempt.
	if tx.nReads+tx.nWrites > 0 {
		tx.karma.Add(tx.nReads + tx.nWrites)
	}
	tx.rollbackTo(0, 0, 0)
	// Aborting while irrevocable is a contract violation (the body returned
	// an error after the switch), but the token must still be surrendered —
	// after the rollback above released our records.
	tx.dropIrrevocable()
	tx.status.Store(uint32(Aborted))
	tx.rt.Stats.Aborts.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvAbort, tx.id, tx.blameObj, 0, 0)
		if tx.blameObj != 0 {
			tr.Hot().BumpAbort(tx.blameObj)
		}
		tx.abortAt = time.Now()
	}
	tx.blameObj = 0
	tx.flushStats()
}

// commit attempts to commit. ok=false means the attempt must abort and
// retry. A non-nil error is only possible after the commit point (the
// transaction's effects are durable) when a cancellation abandoned the
// post-commit quiescence wait; the caller returns it without retrying.
func (tx *Txn) commit() (ok bool, err error) {
	if tx.doomed.Load() && !tx.irrevocable {
		return false, nil
	}
	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PreValidate, tx.id) {
		case faultinject.Abort:
			if !tx.irrevocable {
				return false, nil
			}
		case faultinject.Crash:
			if !tx.irrevocable {
				// Thread dies entering validation: roll back and release
				// everything (the managed-runtime cleanup), then surface it.
				tx.abort()
				panic(faultinject.CrashError{Point: faultinject.PreValidate, Txn: tx.id})
			}
		case faultinject.Orphan:
			// Dies entering validation with every write still in place and
			// every record still Exclusive: the canonical orphan.
			tx.die(faultinject.PreValidate)
		}
	}
	if ok, bad := tx.validate(); !ok {
		if tx.irrevocable {
			// Structurally impossible: every read-set entry is Exclusive(self)
			// since the switch, so validation cannot observe a foreign change.
			panic("stm: irrevocable transaction failed validation")
		}
		tx.notifyStale(bad)
		tx.blameObj = bad
		return false, nil
	}
	// Obtain a write version: one clock tick (GV4, pass-on-failure) covers
	// every record released below, and failing the fast path of every
	// transaction whose snapshot predates this commit. Commits that stored
	// nothing in place skip it — read-only bodies, and irrevocable bodies
	// whose tx.writes holds only pessimistic read claims — since releasing
	// unchanged values leaves stale snapshots valid (wv stays 0, so the
	// releases below degrade to plain version bumps).
	// A durable runtime needs a stamp (the redo record's LSN) for any commit
	// that stored anywhere — including private objects, which skip tx.wrote —
	// even when clock validation is off.
	var wv uint64
	wantStamp := tx.wrote || (tx.sink != nil && len(tx.undo) > 0)
	if wantStamp && (tx.rt.clockOn || tx.sink != nil) {
		var advanced bool
		if wv, advanced = tx.rt.clock.Advance(); advanced {
			tx.nClockAdv++
		}
	}
	tx.status.Store(uint32(Committed))
	if fi := tx.fi; fi != nil {
		switch fi.Fire(faultinject.PostCommitPoint, tx.id) {
		case faultinject.Crash:
			// Past the commit point the transaction is logically committed; a
			// dying thread's records are released exactly as commit would have
			// released them, never rolled back.
			for _, e := range tx.writes {
				e.obj.Rec.ReleaseOwnedAt(e.version, wv)
			}
			tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
			tx.flushStats()
			panic(faultinject.CrashError{Point: faultinject.PostCommitPoint, Txn: tx.id})
		case faultinject.Orphan:
			// Dies just past the commit point still holding every record: the
			// reaper must finish the release (no rollback — it committed).
			tx.die(faultinject.PostCommitPoint)
		}
	}
	// Stream the redo record while the records are still held: appends to
	// the log observe commits to each object in release order, so replay
	// order agrees with every object's version order. Eager versioning wrote
	// in place, so the current slot values under the undo spans ARE the redo
	// image. The injected-death branches above never reach this append: a
	// commit that died before logging is simply not durable, which is the
	// contract (it was never acked).
	var durSeq uint64
	var durErr error
	if tx.sink != nil && len(tx.undo) > 0 {
		tx.redo = tx.redo[:0]
		for _, e := range tx.undo {
			for i := 0; i < e.n; i++ {
				tx.redo = append(tx.redo, stmapi.RedoWrite{
					Ref: e.obj.Ref(), Slot: e.base + i, Val: e.obj.LoadSlot(e.base + i),
				})
			}
		}
		durSeq, durErr = tx.sink.AppendRedo(tx.id, wv, tx.redo)
	}
	// Release with the write version: readers that observe the stamped
	// version either began after the clock advance (snapshot covers it) or
	// extend their snapshot on contact.
	for _, e := range tx.writes {
		e.obj.Rec.ReleaseOwnedAt(e.version, wv)
	}
	tx.rt.Stats.Commits.AddShard(int(tx.id), 1)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvCommit, tx.id, 0, 0, 0)
		tr.ObserveCommit(time.Since(tx.beginAt))
	}
	tx.dropIrrevocable()
	tx.flushStats()
	if tx.rt.cfg.Quiescence {
		if tr := tx.tr; tr != nil {
			start := time.Now()
			err = tx.quiesce()
			tr.ObserveQuiesce(time.Since(start))
		} else {
			err = tx.quiesce()
		}
	}
	// Durability barrier, after the records are released so the group
	// commit's fsync window never extends lock hold times: Atomic returns
	// only once the redo record is on stable storage (or the sink failed —
	// the commit is applied in memory, its durability unknown to the caller).
	if durErr == nil && durSeq != 0 {
		durErr = tx.sink.WaitDurable(durSeq)
	}
	if err == nil {
		err = durErr
	}
	return true, err
}

// quiesce implements the Section 3.4 privatization guarantee: the committed
// transaction waits until every transaction that was active at its commit
// has finished or restarted, so that no doomed transaction can still access
// data this transaction privatized.
//
// A scanned descriptor may be recycled mid-wait; that is benign, because a
// later incarnation begins with a sequence number above commitSeq and so
// falls out of the wait condition.
// A cancelled context abandons the wait and returns its error: the commit
// itself is already durable, only the privatization guarantee is waived for
// this caller (documented on AtomicCtx).
func (tx *Txn) quiesce() error {
	commitSeq := tx.rt.seq.Add(1)
	var err error
	tx.rt.reg.forEach(func(other *Txn) bool {
		if other == tx {
			return true
		}
		for a := 0; Status(other.status.Load()) == Active && other.beginSeq.Load() < commitSeq; a++ {
			if other.dead.Load() {
				// Quiescing on an orphan would spin forever; reclaim it (the
				// reap stores a terminal status, ending this wait).
				tx.rt.reapTxn(other)
				break
			}
			if tx.ctx != nil {
				if err = tx.ctx.Err(); err != nil {
					return false
				}
			}
			conflict.WaitAttempt(a, 0)
		}
		return true
	})
	return err
}

// waitForReadSetChange blocks until any object in the given read set
// changes version or becomes owned, implementing the retry operation. The
// caller passes the aborted transaction's own read set (which survives
// abort and is reset only on the next begin), so no snapshot copy is made.
func (rt *Runtime) waitForReadSetChange(ctx context.Context, rs *objset.VerSet) error {
	if rs.Len() == 0 {
		return nil // retrying with an empty read set would block forever
	}
	for a := 0; ; a++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		changed := false
		rs.Range(func(o *objmodel.Object, ver uint64) bool {
			w := o.Rec.Load()
			if txrec.IsPrivate(w) {
				return true
			}
			if !txrec.IsShared(w) || txrec.Version(w) != ver {
				changed = true
				return false
			}
			return true
		})
		if changed {
			return nil
		}
		conflict.WaitAttempt(a, 0)
	}
}

// Atomic executes body as a transaction. With parent == nil it is a
// top-level atomic block: the body is (re-)executed until it commits. With
// a non-nil parent it is a closed-nested block: a savepoint is taken and a
// body error rolls the parent back to the savepoint (partial abort) while
// conflicts abort and restart the outermost transaction.
//
// The body's error return aborts: ErrAborted (or any wrapped error)
// discards the transaction's effects and is returned to the caller.
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return rt.nested(parent, body)
	}
	return rt.atomic(nil, body, rt.escalateFrom())
}

// AtomicIrrevocable executes body as an irrevocable transaction: once the
// switch succeeds (immediately after begin, while nothing is held), the body
// can never abort, restart, or observe inconsistent state, making it safe to
// perform I/O or other unrecoverable actions inside. With a non-nil parent
// the enclosing transaction itself becomes irrevocable, then body runs
// closed-nested. Returns stmapi.ErrIrrevocableDisabled on a NoIrrevocable
// runtime.
func (rt *Runtime) AtomicIrrevocable(parent *Txn, body func(*Txn) error) error {
	if rt.cfg.NoIrrevocable {
		return stmapi.ErrIrrevocableDisabled
	}
	if parent != nil {
		parent.BecomeIrrevocable()
		return rt.nested(parent, body)
	}
	return rt.atomic(nil, body, 0)
}

// escalateFrom converts the configured escalation threshold into the atomic
// loop's irrevFrom parameter: the attempt index from which the transaction
// runs irrevocably, or -1 for never.
func (rt *Runtime) escalateFrom() int {
	if rt.cfg.EscalateAfter > 0 {
		return rt.cfg.EscalateAfter
	}
	return -1
}

// AtomicCtx is Atomic with deadline/cancellation support. The context is
// checked on entry (an already-cancelled context returns ctx.Err() without
// executing the body), before every re-execution, inside conflict waits,
// during retry's read-set wait, and during post-commit quiescence waits.
// Cancellation before the commit point aborts the attempt (undo-log replay,
// record release with version bump) and returns ctx.Err(); cancellation
// detected during the post-commit quiescence wait returns ctx.Err() with
// the transaction's effects already committed — the error then only means
// the privatization guarantee was not awaited.
//
// With a non-nil parent, a nil ctx inherits the enclosing transaction's
// context; a non-nil ctx governs just the nested block — its cancellation
// partially aborts to the savepoint and AtomicCtx returns ctx.Err() to the
// enclosing body, which decides whether to continue. A nil ctx with a nil
// parent behaves exactly like Atomic, paying zero cancellation checks.
func (rt *Runtime) AtomicCtx(ctx context.Context, parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return rt.nestedCtx(ctx, parent, body)
	}
	return rt.atomic(ctx, body, rt.escalateFrom())
}

// atomic is the top-level execution loop. irrevFrom is the attempt index
// from which the body runs irrevocably (0 = from the first attempt, i.e.
// AtomicIrrevocable; EscalateAfter for graceful degradation; -1 = never).
func (rt *Runtime) atomic(ctx context.Context, body func(*Txn) error, irrevFrom int) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	tx := rt.getTxn()
	tx.ctx = ctx
	defer rt.finish(tx)
	for attempt := 0; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		tx.attempt = attempt
		tx.begin()
		runBody := body
		if irrevFrom >= 0 && attempt >= irrevFrom {
			// Run this attempt irrevocably: switch right after begin, while
			// the read set is empty and nothing is held, so the token acquire
			// can never deadlock and the read-set upgrade is trivial. The
			// closure allocates, but only on this cold path.
			escalated := irrevFrom > 0
			runBody = func(tx *Txn) error {
				tx.becomeIrrevocable(escalated)
				return body(tx)
			}
		}
		err, sig := rt.run(tx, runBody)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			committed, cerr := tx.commit()
			if committed {
				return cerr
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			tx.abort()
			// The read set survives abort (begin resets it on the next
			// attempt), so wait on it in place instead of copying it into a
			// fresh snapshot map on every retry.
			if werr := rt.waitForReadSetChange(ctx, &tx.reads); werr != nil {
				return werr
			}
		case sigCancel:
			tx.abort()
			if ctx != nil {
				return ctx.Err()
			}
			return context.Canceled // unreachable: sigCancel requires a ctx
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

// run executes the body, converting control-flow panics into signals. A
// foreign panic raised while the transaction is doomed (invalid read set)
// is treated as a restart — speculative execution on inconsistent data may
// fault in arbitrary ways, exactly the hazard quiescence-based systems
// worry about (Section 3.4); a managed runtime converts the fault into an
// abort.
func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if tx.dead.Load() {
			// The goroutine died at an Orphan injection point: no cleanup may
			// run — its records stay held for the reaper, and the descriptor
			// must never be pooled (finish checks the same flag).
			panic(r)
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		// Always walk here, never the clock fast path: the question is
		// whether THIS read set is entry-by-entry consistent, and a fault
		// is rare enough that the O(|read set|) answer is the right one.
		if ok, _ := tx.walkValidate(); !ok {
			sig = sigRestart
			return
		}
		// A genuine fault in a consistent transaction: abort (roll back and
		// release every owned record) before propagating, so other threads
		// are not left blocking on records owned by a dead transaction.
		tx.abort()
		panic(r)
	}()
	return body(tx), 0
}

func (rt *Runtime) nested(parent *Txn, body func(*Txn) error) error {
	sp := savepoint{
		undoLen:   len(parent.undo),
		writesLen: len(parent.writes),
		compLen:   len(parent.comps),
	}
	parent.saves = append(parent.saves, sp)
	defer func() { parent.saves = parent.saves[:len(parent.saves)-1] }()
	if err := body(parent); err != nil {
		// Partial abort: roll the parent back to the savepoint.
		parent.rollbackTo(sp.undoLen, sp.writesLen, sp.compLen)
		return err
	}
	return nil
}

// nestedCtx runs a closed-nested block under its own context. While the
// block runs, cancellation checks consult the child context; callers who
// want the enclosing context to also cut the nested block short should
// derive the child from it (context.WithTimeout(parentCtx, ...)).
func (rt *Runtime) nestedCtx(ctx context.Context, parent *Txn, body func(*Txn) error) (err error) {
	if ctx == nil {
		return rt.nested(parent, body) // inherit the enclosing context
	}
	if e := ctx.Err(); e != nil {
		return e
	}
	sp := savepoint{
		undoLen:   len(parent.undo),
		writesLen: len(parent.writes),
		compLen:   len(parent.comps),
	}
	prev := parent.ctx
	parent.ctx = ctx
	parent.saves = append(parent.saves, sp)
	defer func() {
		parent.saves = parent.saves[:len(parent.saves)-1]
		parent.ctx = prev
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == parent && s.s == sigCancel {
			if prev == nil || prev.Err() == nil {
				// The cancellation is scoped to this nested block: partial
				// abort to the savepoint and report it as the block's error.
				parent.rollbackTo(sp.undoLen, sp.writesLen, sp.compLen)
				err = ctx.Err()
				return
			}
			// The enclosing context is cancelled too; let the outer level
			// handle it (full abort).
		}
		panic(r)
	}()
	if berr := body(parent); berr != nil {
		parent.rollbackTo(sp.undoLen, sp.writesLen, sp.compLen)
		return berr
	}
	return nil
}

// AtomicOpen executes body as an open-nested transaction: an independent
// transaction that commits (or aborts) immediately, regardless of the
// enclosing transaction's fate. If parent is non-nil and the open-nested
// transaction commits, compensation (if non-nil) is registered to run if
// the parent later aborts.
func (rt *Runtime) AtomicOpen(parent *Txn, body func(*Txn) error, compensation func()) error {
	err := rt.Atomic(nil, body)
	if err == nil && parent != nil && compensation != nil {
		parent.comps = append(parent.comps, compensation)
	}
	return err
}

// ActiveTransactions returns the number of registered descriptors whose
// status is Active (for tests and monitoring). Scans the sharded slot
// array without allocating.
func (rt *Runtime) ActiveTransactions() int {
	n := 0
	rt.reg.forEach(func(tx *Txn) bool {
		if Status(tx.status.Load()) == Active {
			n++
		}
		return true
	})
	return n
}
