// Package stm implements the eager-versioning software transactional memory
// at the core of the paper's system (Section 3): McRT-STM-style optimistic
// concurrency control using versioning for reads and strict two-phase
// locking with eager versioning (in-place update + undo log) for writes.
//
// Each object's transaction record (package txrec) arbitrates access. A
// transaction opens an object for reading by sampling its version and
// validating the whole read set at commit; it opens an object for writing
// by CAS-ing the record from Shared to Exclusive, updating memory in place,
// and logging the old value for rollback. Commit validates the read set and
// releases owned records with incremented versions; abort replays the undo
// log in reverse and releases with incremented versions so that optimistic
// readers of intermediate state fail validation.
//
// The package also provides the features the paper's system supports:
// closed nesting (savepoints), open nesting with compensation actions,
// user-initiated retry, a quiescence mode (Section 3.4), configurable
// undo-log granularity (to reproduce the Section 2.4 anomalies), and
// integration with dynamic escape analysis (Section 4): accesses to
// private objects skip synchronization, and writing a reference into a
// public object immediately publishes the referenced private subgraph.
package stm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/conflict"
	"repro/internal/objmodel"
	"repro/internal/txrec"
)

// Status is the lifecycle state of a transaction attempt.
type Status uint32

// Transaction statuses.
const (
	Active Status = iota
	Committed
	Aborted
)

// MaxGranularity is the largest supported version-management granularity in
// slots.
const MaxGranularity = 2

// Config parameterizes a Runtime.
type Config struct {
	// Granularity is the number of adjacent slots covered by one undo-log
	// entry: 1 (field-granular, the safe default) or 2 (reproduces the
	// granular lost update anomaly of Section 2.4).
	Granularity int

	// Quiescence enables the Section 3.4 privatization mechanism: a
	// transaction completes only after all transactions concurrently active
	// at its commit have finished or restarted.
	Quiescence bool

	// DEA enables dynamic escape analysis cooperation: transactional
	// accesses to private objects skip record synchronization and undo
	// logging still applies; transactional writes of references into public
	// objects publish the referenced subgraph immediately (Section 4).
	DEA bool

	// Handler receives conflict notifications; nil means a shared Backoff.
	Handler conflict.Handler

	// SelfAbortAfter is the number of conflict-handler invocations a single
	// transactional access tolerates before the transaction aborts itself
	// and restarts (breaking writer-writer deadlocks). Zero means the
	// default of 64.
	SelfAbortAfter int
}

// DefaultSelfAbortAfter is the default Config.SelfAbortAfter.
const DefaultSelfAbortAfter = 64

// Stats aggregates runtime counters for experiments.
type Stats struct {
	Starts      atomic.Int64 // transaction attempts begun
	Commits     atomic.Int64
	Aborts      atomic.Int64 // aborts of any cause (conflict, validation, retry)
	UserRetries atomic.Int64 // user-initiated retry operations
	TxnReads    atomic.Int64
	TxnWrites   atomic.Int64
}

// Runtime is an STM instance bound to a heap.
type Runtime struct {
	Heap  *objmodel.Heap
	Stats Stats

	cfg     Config
	handler conflict.Handler
	nextID  atomic.Uint64
	seq     atomic.Uint64 // global begin/commit sequence for quiescence
	reg     sync.Map      // id -> *Txn, active-transaction registry
}

// New creates a Runtime over heap with the given configuration.
func New(heap *objmodel.Heap, cfg Config) *Runtime {
	if cfg.Granularity == 0 {
		cfg.Granularity = 1
	}
	if cfg.Granularity < 1 || cfg.Granularity > MaxGranularity {
		panic(fmt.Sprintf("stm: unsupported granularity %d", cfg.Granularity))
	}
	if cfg.SelfAbortAfter == 0 {
		cfg.SelfAbortAfter = DefaultSelfAbortAfter
	}
	h := cfg.Handler
	if h == nil {
		h = &conflict.Backoff{}
	}
	return &Runtime{Heap: heap, cfg: cfg, handler: h}
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// control-flow signals raised inside transaction bodies.
type signal uint8

const (
	sigRestart signal = iota + 1 // conflict or explicit restart: abort and re-execute
	sigRetry                     // user retry: abort, wait for read set change, re-execute
)

type txSignal struct {
	s  signal
	tx *Txn
}

// ErrAborted is returned by Atomic when the body requests a permanent abort
// by returning it: the transaction rolls back and Atomic returns ErrAborted
// without retrying.
var ErrAborted = errors.New("stm: transaction aborted by user")

type ownedEntry struct {
	obj     *objmodel.Object
	version uint64 // version observed in the Shared word we replaced
}

type undoEntry struct {
	obj  *objmodel.Object
	base int // first slot of the span
	n    int // number of slots captured
	vals [MaxGranularity]uint64
}

type savepoint struct {
	undoLen   int
	writesLen int
	compLen   int
}

// Txn is a transaction descriptor. A Txn is confined to the goroutine that
// runs the atomic body; only status and beginSeq are read by other threads.
type Txn struct {
	rt       *Runtime
	id       uint64
	status   atomic.Uint32
	beginSeq atomic.Uint64

	reads   map[*objmodel.Object]uint64 // first-read version per object
	owned   map[*objmodel.Object]uint64 // object -> version saved at acquire
	writes  []ownedEntry
	undo    []undoEntry
	saves   []savepoint
	comps   []func() // open-nesting compensations, run on abort in reverse
	attempt int
}

// ID returns the transaction's owner ID as encoded in acquired records.
func (tx *Txn) ID() uint64 { return tx.id }

// Status returns the descriptor's current status.
func (tx *Txn) Status() Status { return Status(tx.status.Load()) }

func (rt *Runtime) newTxn() *Txn {
	tx := &Txn{
		rt:    rt,
		id:    rt.nextID.Add(1),
		reads: make(map[*objmodel.Object]uint64),
		owned: make(map[*objmodel.Object]uint64),
	}
	rt.reg.Store(tx.id, tx)
	return tx
}

func (tx *Txn) begin() {
	tx.status.Store(uint32(Active))
	tx.beginSeq.Store(tx.rt.seq.Add(1))
	clear(tx.reads)
	clear(tx.owned)
	tx.writes = tx.writes[:0]
	tx.undo = tx.undo[:0]
	tx.saves = tx.saves[:0]
	tx.comps = tx.comps[:0]
	tx.rt.Stats.Starts.Add(1)
}

// Restart aborts the transaction and re-executes it from the beginning of
// the outermost atomic block. Exposed so tests and litmus programs can
// force the "transaction aborts for some reason" steps of the paper's
// Figure 3 examples, and used internally when an access discovers the
// transaction is doomed.
func (tx *Txn) Restart() {
	panic(txSignal{sigRestart, tx})
}

// Retry implements the user-initiated retry operation: the transaction
// aborts and blocks until some location in its read set changes, then
// re-executes.
func (tx *Txn) Retry() {
	tx.rt.Stats.UserRetries.Add(1)
	panic(txSignal{sigRetry, tx})
}

func (tx *Txn) conflictWait(kind conflict.Kind, attempt int, rec txrec.Word) {
	if attempt >= tx.rt.cfg.SelfAbortAfter {
		tx.Restart()
	}
	tx.rt.handler.HandleConflict(conflict.Info{Kind: kind, Attempt: attempt, Record: rec})
}

// Read opens object o for reading at slot and returns the value
// (open-for-read, Section 3.1). Private objects (dynamic escape analysis)
// are read directly. Reads of objects owned by other transactions or by
// non-transactional writers invoke the conflict manager and retry.
func (tx *Txn) Read(o *objmodel.Object, slot int) uint64 {
	tx.rt.Stats.TxnReads.Add(1)
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Visible to this thread only; no logging or validation needed.
			return o.LoadSlot(slot)
		case txrec.IsExclusive(w):
			if txrec.Owner(w) == tx.id {
				return o.LoadSlot(slot)
			}
			tx.conflictWait(conflict.TxnRead, attempt, w)
		case txrec.IsExclusiveAnon(w):
			// A non-transactional writer holds the record.
			tx.conflictWait(conflict.TxnRead, attempt, w)
		default: // shared
			v := o.LoadSlot(slot)
			if o.Rec.Load() != w {
				// Record changed under us; retry the sample.
				continue
			}
			ver := txrec.Version(w)
			if prev, ok := tx.reads[o]; ok {
				if prev != ver {
					// We already read this object at an older version: the
					// transaction is doomed; abort eagerly.
					tx.Restart()
				}
			} else {
				tx.reads[o] = ver
			}
			return v
		}
	}
}

// ReadRef is Read for reference slots.
func (tx *Txn) ReadRef(o *objmodel.Object, slot int) objmodel.Ref {
	return objmodel.Ref(tx.Read(o, slot))
}

func (tx *Txn) logUndo(o *objmodel.Object, slot int) {
	g := tx.rt.cfg.Granularity
	base := slot &^ (g - 1)
	e := undoEntry{obj: o, base: base}
	for i := 0; i < g && base+i < len(o.Slots); i++ {
		e.vals[i] = o.LoadSlot(base + i)
		e.n++
	}
	tx.undo = append(tx.undo, e)
}

func (tx *Txn) maybePublish(o *objmodel.Object, slot int, v uint64) {
	if !tx.rt.cfg.DEA || v == 0 || !o.IsRefSlot(slot) {
		return
	}
	// The container is public (callers ensure this); publish the referenced
	// subgraph immediately — even before commit, a doomed transaction in
	// another thread may access objects published by this write (Section 4).
	tx.rt.Heap.PublishRef(objmodel.Ref(v))
}

// Write opens object o for writing at slot and stores v in place
// (open-for-write with strict two-phase locking and eager versioning).
func (tx *Txn) Write(o *objmodel.Object, slot int, v uint64) {
	tx.rt.Stats.TxnWrites.Add(1)
	for attempt := 0; ; attempt++ {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Thread-local: no locking, but rollback must still restore it.
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			return
		case txrec.IsExclusive(w):
			if txrec.Owner(w) != tx.id {
				tx.conflictWait(conflict.TxnWrite, attempt, w)
				continue
			}
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			tx.maybePublish(o, slot, v)
			return
		case txrec.IsExclusiveAnon(w):
			tx.conflictWait(conflict.TxnWrite, attempt, w)
		default: // shared: acquire
			if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
				continue
			}
			ver := txrec.Version(w)
			tx.writes = append(tx.writes, ownedEntry{o, ver})
			tx.owned[o] = ver
			if prev, ok := tx.reads[o]; ok && prev != ver {
				// Object changed between our read and this acquire: doomed.
				tx.Restart()
			}
			tx.logUndo(o, slot)
			o.StoreSlot(slot, v)
			tx.maybePublish(o, slot, v)
			return
		}
	}
}

// WriteRef is Write for reference slots.
func (tx *Txn) WriteRef(o *objmodel.Object, slot int, r objmodel.Ref) {
	tx.Write(o, slot, uint64(r))
}

// Validate re-checks the read set and reports whether the transaction is
// still consistent. The VM calls this periodically so that doomed
// transactions (which have read data speculatively written by others)
// abort promptly instead of looping or faulting.
func (tx *Txn) Validate() bool {
	for o, ver := range tx.reads {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Only this thread could ever have seen it; trivially valid.
		case txrec.IsShared(w):
			if txrec.Version(w) != ver {
				return false
			}
		case txrec.IsExclusive(w) && txrec.Owner(w) == tx.id:
			if tx.owned[o] != ver {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidateOrRestart aborts and restarts the transaction if it is doomed.
func (tx *Txn) ValidateOrRestart() {
	if !tx.Validate() {
		tx.Restart()
	}
}

func (tx *Txn) rollbackTo(undoLen, writesLen, compLen int) {
	// Replay the undo log in reverse: later entries may shadow earlier ones,
	// so reverse order restores the oldest values last.
	for i := len(tx.undo) - 1; i >= undoLen; i-- {
		e := tx.undo[i]
		for j := 0; j < e.n; j++ {
			e.obj.StoreSlot(e.base+j, e.vals[j])
		}
	}
	tx.undo = tx.undo[:undoLen]
	// Release records acquired after the savepoint, bumping versions so
	// optimistic readers of our speculative state fail validation (the
	// bump is load-bearing: without it, a reader that sampled the record,
	// read a speculative slot value, and re-checked the record could pass
	// its double-check against the restored word — an ABA).
	for i := len(tx.writes) - 1; i >= writesLen; i-- {
		e := tx.writes[i]
		e.obj.Rec.ReleaseOwned(e.version)
		delete(tx.owned, e.obj)
		// Partial abort: the rollback above restored exactly the values the
		// enclosing transaction read before this record was acquired, so
		// refresh its read-set entry to the post-release version — otherwise
		// the parent would fail validation against its own nested abort and
		// retry forever.
		if _, ok := tx.reads[e.obj]; ok {
			tx.reads[e.obj] = e.version + 1
		}
	}
	tx.writes = tx.writes[:writesLen]
	// Run open-nesting compensations registered after the savepoint.
	for i := len(tx.comps) - 1; i >= compLen; i-- {
		tx.comps[i]()
	}
	tx.comps = tx.comps[:compLen]
}

func (tx *Txn) abort() {
	tx.rollbackTo(0, 0, 0)
	tx.status.Store(uint32(Aborted))
	tx.rt.Stats.Aborts.Add(1)
}

func (tx *Txn) commit() bool {
	if !tx.Validate() {
		return false
	}
	tx.status.Store(uint32(Committed))
	for _, e := range tx.writes {
		e.obj.Rec.ReleaseOwned(e.version)
	}
	tx.rt.Stats.Commits.Add(1)
	if tx.rt.cfg.Quiescence {
		tx.quiesce()
	}
	return true
}

// quiesce implements the Section 3.4 privatization guarantee: the committed
// transaction waits until every transaction that was active at its commit
// has finished or restarted, so that no doomed transaction can still access
// data this transaction privatized.
func (tx *Txn) quiesce() {
	commitSeq := tx.rt.seq.Add(1)
	tx.rt.reg.Range(func(_, v any) bool {
		other := v.(*Txn)
		if other == tx {
			return true
		}
		for a := 0; Status(other.status.Load()) == Active && other.beginSeq.Load() < commitSeq; a++ {
			conflict.WaitAttempt(a, 0)
		}
		return true
	})
}

// waitForReadSetChange blocks until any object in the given read snapshot
// changes version or becomes owned, implementing the retry operation.
func (rt *Runtime) waitForReadSetChange(snapshot map[*objmodel.Object]uint64) {
	if len(snapshot) == 0 {
		return // retrying with an empty read set would block forever
	}
	for a := 0; ; a++ {
		for o, ver := range snapshot {
			w := o.Rec.Load()
			if txrec.IsPrivate(w) {
				continue
			}
			if !txrec.IsShared(w) || txrec.Version(w) != ver {
				return
			}
		}
		conflict.WaitAttempt(a, 0)
	}
}

// Atomic executes body as a transaction. With parent == nil it is a
// top-level atomic block: the body is (re-)executed until it commits. With
// a non-nil parent it is a closed-nested block: a savepoint is taken and a
// body error rolls the parent back to the savepoint (partial abort) while
// conflicts abort and restart the outermost transaction.
//
// The body's error return aborts: ErrAborted (or any wrapped error)
// discards the transaction's effects and is returned to the caller.
func (rt *Runtime) Atomic(parent *Txn, body func(*Txn) error) error {
	if parent != nil {
		return rt.nested(parent, body)
	}
	tx := rt.newTxn()
	defer rt.reg.Delete(tx.id)
	for attempt := 0; ; attempt++ {
		tx.attempt = attempt
		tx.begin()
		err, sig := rt.run(tx, body)
		switch sig {
		case 0:
			if err != nil {
				tx.abort()
				return err
			}
			if tx.commit() {
				return nil
			}
			tx.abort()
		case sigRestart:
			tx.abort()
		case sigRetry:
			snapshot := make(map[*objmodel.Object]uint64, len(tx.reads))
			for o, v := range tx.reads {
				snapshot[o] = v
			}
			tx.abort()
			rt.waitForReadSetChange(snapshot)
		}
		conflict.WaitAttempt(attempt, 0)
	}
}

// run executes the body, converting control-flow panics into signals. A
// foreign panic raised while the transaction is doomed (invalid read set)
// is treated as a restart — speculative execution on inconsistent data may
// fault in arbitrary ways, exactly the hazard quiescence-based systems
// worry about (Section 3.4); a managed runtime converts the fault into an
// abort.
func (rt *Runtime) run(tx *Txn, body func(*Txn) error) (err error, sig signal) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s, ok := r.(txSignal); ok && s.tx == tx {
			sig = s.s
			return
		}
		if !tx.Validate() {
			sig = sigRestart
			return
		}
		// A genuine fault in a consistent transaction: abort (roll back and
		// release every owned record) before propagating, so other threads
		// are not left blocking on records owned by a dead transaction.
		tx.abort()
		panic(r)
	}()
	return body(tx), 0
}

func (rt *Runtime) nested(parent *Txn, body func(*Txn) error) error {
	sp := savepoint{
		undoLen:   len(parent.undo),
		writesLen: len(parent.writes),
		compLen:   len(parent.comps),
	}
	parent.saves = append(parent.saves, sp)
	defer func() { parent.saves = parent.saves[:len(parent.saves)-1] }()
	if err := body(parent); err != nil {
		// Partial abort: roll the parent back to the savepoint.
		parent.rollbackTo(sp.undoLen, sp.writesLen, sp.compLen)
		return err
	}
	return nil
}

// AtomicOpen executes body as an open-nested transaction: an independent
// transaction that commits (or aborts) immediately, regardless of the
// enclosing transaction's fate. If parent is non-nil and the open-nested
// transaction commits, compensation (if non-nil) is registered to run if
// the parent later aborts.
func (rt *Runtime) AtomicOpen(parent *Txn, body func(*Txn) error, compensation func()) error {
	err := rt.Atomic(nil, body)
	if err == nil && parent != nil && compensation != nil {
		parent.comps = append(parent.comps, compensation)
	}
	return err
}

// ActiveTransactions returns the number of registered descriptors whose
// status is Active (for tests and monitoring).
func (rt *Runtime) ActiveTransactions() int {
	n := 0
	rt.reg.Range(func(_, v any) bool {
		if Status(v.(*Txn).status.Load()) == Active {
			n++
		}
		return true
	})
	return n
}
