package stm

// Tests for the scalable hot path: descriptor pooling (no state leaks
// across reused descriptors), descriptor-local statistics flushed at
// commit/abort, and the sharded slot-array transaction registry (including
// its overflow path and quiescence scans). All are run under -race in CI.

import (
	"sync"
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

// TestPooledDescriptorClean verifies that a descriptor fetched from the
// pool carries nothing over from its previous incarnation: empty read and
// owned sets, empty write/undo/compensation logs, and a fresh ID.
func TestPooledDescriptorClean(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	var lastID uint64
	for i := 0; i < 50; i++ {
		err := f.rt.Atomic(nil, func(tx *Txn) error {
			if tx.reads.Len() != 0 || tx.owned.Len() != 0 {
				t.Errorf("iter %d: dirty read/owned set (%d/%d entries)",
					i, tx.reads.Len(), tx.owned.Len())
			}
			if len(tx.writes) != 0 || len(tx.undo) != 0 || len(tx.comps) != 0 {
				t.Errorf("iter %d: dirty logs (writes %d, undo %d, comps %d)",
					i, len(tx.writes), len(tx.undo), len(tx.comps))
			}
			if tx.id <= lastID {
				t.Errorf("iter %d: id %d not fresh (last %d)", i, tx.id, lastID)
			}
			lastID = tx.id
			// Dirty the descriptor thoroughly for the next reuse check:
			// spill the read set past its inline capacity, write, and nest.
			for j := 0; j < 12; j++ {
				c := f.newCell()
				_ = tx.Read(c, 0)
			}
			tx.Write(o, 0, uint64(i))
			return f.rt.Atomic(tx, func(tx *Txn) error {
				tx.Write(o, 1, uint64(i))
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPooledDescriptorsParallel hammers the pool from many goroutines, each
// transacting on its own object, and checks that no reused descriptor ever
// bleeds state into another goroutine's transaction.
func TestPooledDescriptorsParallel(t *testing.T) {
	f := newFixture(t, Config{})
	const goroutines = 8
	const iters = 200
	objs := make([]*objmodel.Object, goroutines)
	for g := range objs {
		objs[g] = f.newCell()
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			o := objs[g]
			for i := 1; i <= iters; i++ {
				err := f.rt.Atomic(nil, func(tx *Txn) error {
					if tx.reads.Len() != 0 || len(tx.writes) != 0 {
						t.Errorf("goroutine %d: dirty descriptor", g)
					}
					prev := tx.Read(o, 0)
					if prev != uint64(i-1) {
						t.Errorf("goroutine %d iter %d: read %d, want %d", g, i, prev, i-1)
					}
					tx.Write(o, 0, uint64(i))
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, o := range objs {
		if got := o.LoadSlot(0); got != iters {
			t.Errorf("goroutine %d: final value %d, want %d", g, got, iters)
		}
	}
}

// TestStatsFlushParallel checks the descriptor-local counter flush under
// parallel commits and aborts: every begun attempt is accounted as exactly
// one commit or abort, and access counts cover at least the committed work.
func TestStatsFlushParallel(t *testing.T) {
	f := newFixture(t, Config{})
	o := f.newCell()
	const goroutines = 8
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					if i%4 == 3 {
						return ErrAborted
					}
					return nil
				})
				if i%4 == 3 && err != ErrAborted {
					t.Errorf("want ErrAborted, got %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	var (
		starts  = f.rt.Stats.Starts.Load()
		commits = f.rt.Stats.Commits.Load()
		aborts  = f.rt.Stats.Aborts.Load()
		writes  = f.rt.Stats.TxnWrites.Load()
		reads   = f.rt.Stats.TxnReads.Load()
	)
	const total = goroutines * iters
	const wantCommits = total * 3 / 4
	if commits != wantCommits {
		t.Errorf("commits = %d, want %d", commits, wantCommits)
	}
	if starts != commits+aborts {
		t.Errorf("starts (%d) != commits (%d) + aborts (%d)", starts, commits, aborts)
	}
	if aborts < total/4 {
		t.Errorf("aborts = %d, want >= %d (user aborts alone)", aborts, total/4)
	}
	if writes < total || reads < total {
		t.Errorf("reads/writes = %d/%d, want >= %d each", reads, writes, total)
	}
	if got := o.LoadSlot(0); got != wantCommits {
		t.Errorf("cell = %d, want %d (only committed increments)", got, wantCommits)
	}
}

// TestQuiescenceShardedRegistry runs contended committing transactions in
// quiescence mode: every commit scans the slot-array registry and waits out
// concurrently active transactions. The final count proves isolation held;
// an empty registry at the end proves begin/end stayed balanced.
func TestQuiescenceShardedRegistry(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	o := f.newCell()
	const goroutines = 8
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, tx.Read(o, 0)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := o.LoadSlot(0); got != goroutines*iters {
		t.Errorf("cell = %d, want %d", got, goroutines*iters)
	}
	if n := f.rt.ActiveTransactions(); n != 0 {
		t.Errorf("active transactions after quiesced run = %d, want 0", n)
	}
}

// TestRegistryOverflow holds more concurrent transactions open than the
// slot array can hold, forcing the overflow path, and checks that scans
// (ActiveTransactions) still see every one of them.
func TestRegistryOverflow(t *testing.T) {
	f := newFixture(t, Config{})
	const extra = 16
	const total = regSlots + extra
	ready := make(chan struct{}, total)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		o := f.newCell()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = f.rt.Atomic(nil, func(tx *Txn) error {
				tx.Write(o, 0, 1)
				ready <- struct{}{}
				<-release
				return nil
			})
		}()
	}
	for i := 0; i < total; i++ {
		<-ready
	}
	if n := f.rt.ActiveTransactions(); n != total {
		t.Errorf("active = %d, want %d (overflow transactions missing from scan)", n, total)
	}
	close(release)
	wg.Wait()
	if n := f.rt.ActiveTransactions(); n != 0 {
		t.Errorf("active after completion = %d, want 0", n)
	}
	if got := f.rt.Stats.Commits.Load(); got != total {
		t.Errorf("commits = %d, want %d", got, total)
	}
}
