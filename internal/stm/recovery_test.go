package stm

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

func newRecoveryRuntime(t *testing.T, cfg Config) (*Runtime, *objmodel.Object) {
	t.Helper()
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "Acct",
		Fields: []objmodel.Field{{Name: "bal"}, {Name: "aux"}},
	})
	rt := New(h, cfg)
	return rt, h.New(cls)
}

// orphanOnce runs body in its own goroutine and swallows the OrphanError the
// injected death raises, returning once the goroutine has fully unwound.
func orphanOnce(t *testing.T, rt *Runtime, body func(tx *Txn) error) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		defer func() {
			r := recover()
			if r == nil {
				done <- errors.New("no orphan panic")
				return
			}
			if _, ok := r.(faultinject.OrphanError); !ok {
				panic(r)
			}
			done <- nil
		}()
		done <- rt.Atomic(nil, body)
	}()
	if err := <-done; err != nil {
		t.Fatalf("orphan goroutine: %v", err)
	}
}

func TestReaperRestoresOrphanedRecord(t *testing.T) {
	rt, o := newRecoveryRuntime(t, Config{})
	rt.Atomic(nil, func(tx *Txn) error { tx.Write(o, 0, 41); return nil })

	in := faultinject.New(1, faultinject.Rule{Point: faultinject.PostAcquire, Action: faultinject.Orphan, Every: 1})
	rt.SetInjector(in)
	orphanOnce(t, rt, func(tx *Txn) error {
		tx.Write(o, 0, 999) // dies owning o with 999 already in place
		return nil
	})
	rt.SetInjector(nil)

	if w := o.Rec.Load(); !txrec.IsExclusive(w) {
		t.Fatalf("record not left Exclusive by the orphan: %#x", w)
	}
	reaper := recovery.NewReaper(rt.Recovery(), recovery.Config{})
	rep := reaper.ScanOnce()
	if rep.Reaped != 1 {
		t.Fatalf("reaped %d, want 1", rep.Reaped)
	}
	if w := o.Rec.Load(); !txrec.IsShared(w) {
		t.Fatalf("record not restored to Shared: %#x", w)
	}
	if v := o.LoadSlot(0); v != 41 {
		t.Fatalf("undo not replayed: slot = %d, want 41", v)
	}
	if n := rt.Stats.ReaperSteals.Load(); n != 1 {
		t.Fatalf("ReaperSteals = %d, want 1", n)
	}
	// The orphan must stay reclaimable exactly once.
	if rep := reaper.ScanOnce(); rep.Reaped != 0 {
		t.Fatalf("second scan reaped %d, want 0", rep.Reaped)
	}
}

func TestCommittedOrphanKeepsEffects(t *testing.T) {
	rt, o := newRecoveryRuntime(t, Config{})
	in := faultinject.New(1, faultinject.Rule{Point: faultinject.PostCommitPoint, Action: faultinject.Orphan, Every: 1})
	rt.SetInjector(in)
	orphanOnce(t, rt, func(tx *Txn) error {
		tx.Write(o, 0, 7)
		return nil
	})
	rt.SetInjector(nil)

	reaper := recovery.NewReaper(rt.Recovery(), recovery.Config{})
	if rep := reaper.ScanOnce(); rep.Reaped != 1 {
		t.Fatalf("reaped %d, want 1", rep.Reaped)
	}
	if w := o.Rec.Load(); !txrec.IsShared(w) {
		t.Fatalf("record not released: %#x", w)
	}
	if v := o.LoadSlot(0); v != 7 {
		t.Fatalf("committed effect lost: slot = %d, want 7", v)
	}
}

func TestWaiterStealsInlineWithoutReaper(t *testing.T) {
	rt, o := newRecoveryRuntime(t, Config{})
	in := faultinject.New(1, faultinject.Rule{Point: faultinject.PreValidate, Action: faultinject.Orphan, Every: 1})
	rt.SetInjector(in)
	orphanOnce(t, rt, func(tx *Txn) error {
		tx.Write(o, 0, 999)
		return nil
	})
	rt.SetInjector(nil)

	// No reaper: the next writer must find the dead owner and steal inline.
	done := make(chan error, 1)
	go func() {
		done <- rt.Atomic(nil, func(tx *Txn) error { tx.Write(o, 0, 5); return nil })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("writer after orphan: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer blocked on orphaned record: inline steal did not happen")
	}
	if v := o.LoadSlot(0); v != 5 {
		t.Fatalf("slot = %d, want 5", v)
	}
}

// TestReaperVsInlineStealRace races the two reclamation paths against each
// other on the same orphan: a background reaper scanning flat out while a
// conflicting writer steals inline the moment it finds the dead owner.
// Reclaim is idempotent per victim, so exactly one of them may win — the
// steal counter must read exactly 1, the record must end Shared, and the
// waiter's write must land. Run under -race in CI; repeated iterations give
// the schedules room to interleave both orders.
func TestReaperVsInlineStealRace(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		rt, o := newRecoveryRuntime(t, Config{})
		if err := rt.Atomic(nil, func(tx *Txn) error { tx.Write(o, 0, 41); return nil }); err != nil {
			t.Fatal(err)
		}
		in := faultinject.New(uint64(i)+1, faultinject.Rule{Point: faultinject.PostAcquire, Action: faultinject.Orphan, Every: 1})
		rt.SetInjector(in)
		orphanOnce(t, rt, func(tx *Txn) error {
			tx.Write(o, 0, 999)
			return nil
		})
		rt.SetInjector(nil)

		reaper := recovery.NewReaper(rt.Recovery(), recovery.Config{})
		start := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // reaper side
			defer wg.Done()
			<-start
			for j := 0; j < 4; j++ {
				reaper.ScanOnce()
			}
		}()
		var werr error
		go func() { // inline-steal side: conflicts with the orphaned record
			defer wg.Done()
			<-start
			werr = rt.Atomic(nil, func(tx *Txn) error { tx.Write(o, 0, 5); return nil })
		}()
		close(start)
		wg.Wait()
		if werr != nil {
			t.Fatalf("iteration %d: writer after orphan: %v", i, werr)
		}
		if n := rt.Stats.ReaperSteals.Load(); n != 1 {
			t.Fatalf("iteration %d: %d steals recorded, want exactly 1 (double reclaim?)", i, n)
		}
		if w := o.Rec.Load(); !txrec.IsShared(w) {
			t.Fatalf("iteration %d: record not Shared after race: %#x", i, w)
		}
		if v := o.LoadSlot(0); v != 5 {
			t.Fatalf("iteration %d: slot = %d, want the waiter's 5", i, v)
		}
	}
}

func TestAtomicIrrevocableCommitsAndReleasesToken(t *testing.T) {
	rt, o := newRecoveryRuntime(t, Config{})
	rt.Atomic(nil, func(tx *Txn) error { tx.Write(o, 0, 1); return nil })

	err := rt.AtomicIrrevocable(nil, func(tx *Txn) error {
		v := tx.Read(o, 0)
		if !tx.IsIrrevocable() {
			t.Error("body not irrevocable inside AtomicIrrevocable")
		}
		tx.Write(o, 0, v+1)
		return nil
	})
	if err != nil {
		t.Fatalf("AtomicIrrevocable: %v", err)
	}
	if v := o.LoadSlot(0); v != 2 {
		t.Fatalf("slot = %d, want 2", v)
	}
	if tok := rt.irrevToken.Load(); tok != 0 {
		t.Fatalf("token not released: %d", tok)
	}
	if n := rt.Stats.IrrevocableTxns.Load(); n != 1 {
		t.Fatalf("IrrevocableTxns = %d, want 1", n)
	}
	if ns := rt.Stats.IrrevocableNs.Load(); ns <= 0 {
		t.Fatalf("IrrevocableNs = %d, want > 0", ns)
	}
}

func TestAtomicIrrevocableDisabled(t *testing.T) {
	rt, _ := newRecoveryRuntime(t, Config{CommonConfig: stmapi.CommonConfig{NoIrrevocable: true}})
	err := rt.AtomicIrrevocable(nil, func(tx *Txn) error { return nil })
	if !errors.Is(err, stmapi.ErrIrrevocableDisabled) {
		t.Fatalf("err = %v, want ErrIrrevocableDisabled", err)
	}
}

func TestBecomeIrrevocableMidBodySurvivesDoom(t *testing.T) {
	rt, o := newRecoveryRuntime(t, Config{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Background writers hammer the object, trying to invalidate the reader.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 1, tx.Read(o, 1)+1)
					return nil
				})
			}
		}()
	}
	err := rt.Atomic(nil, func(tx *Txn) error {
		tx.BecomeIrrevocable()
		// Past the switch nothing may abort us: a read of the contended
		// object acquires it pessimistically and must succeed.
		v := tx.Read(o, 1)
		time.Sleep(time.Millisecond)
		tx.Write(o, 0, v)
		return nil
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("irrevocable txn returned %v", err)
	}
	if tok := rt.irrevToken.Load(); tok != 0 {
		t.Fatalf("token not released: %d", tok)
	}
}

func TestEscalateAfterConsecutiveAborts(t *testing.T) {
	rt, o := newRecoveryRuntime(t, Config{
		CommonConfig: stmapi.CommonConfig{EscalateAfter: 3},
	})
	// Abort every attempt at validation; the fourth attempt escalates to
	// irrevocable, which ignores the Abort injection and commits.
	in := faultinject.New(1, faultinject.Rule{Point: faultinject.PreValidate, Action: faultinject.Abort, Every: 1})
	rt.SetInjector(in)
	sawIrrevocable := false
	err := rt.Atomic(nil, func(tx *Txn) error {
		sawIrrevocable = tx.IsIrrevocable()
		tx.Write(o, 0, uint64(tx.Attempt()))
		return nil
	})
	rt.SetInjector(nil)
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if !sawIrrevocable {
		t.Fatal("final attempt did not run irrevocably")
	}
	if n := rt.Stats.Escalations.Load(); n != 1 {
		t.Fatalf("Escalations = %d, want 1", n)
	}
	if v := o.LoadSlot(0); v != 3 {
		t.Fatalf("slot = %d, want 3 (attempt index at escalation)", v)
	}
}
