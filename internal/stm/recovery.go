// Orphaned-transaction recovery and irrevocable mode for the eager runtime.
//
// Recovery: a goroutine that dies mid-protocol (simulated by the faultinject
// Orphan action) leaves its records Exclusive with nobody to release them.
// The dying path marks the descriptor dead — a release-store, so everything
// the goroutine wrote beforehand (undo log, writes list) happens-before any
// thread that observes the flag — and then unwinds without cleanup. Reclaim
// is reapTxn: a CAS on the reaping flag elects a single reclaimer, which
// replays the orphan's undo log and releases its records exactly as the
// orphan's own abort would have (or, past the commit point, finishes the
// release without rollback). Reclaimers are either the recovery.Reaper's
// periodic scan or a conflicting waiter that finds its owner dead — so
// orphans are recovered within a bounded wait even with no reaper running.
//
// Irrevocability: a transaction holding the runtime's singular token can
// never abort. The switch (BecomeIrrevocable) acquires the token, then
// upgrades every read-set entry to Exclusive at its recorded version; from
// then on reads are pessimistic (acquire like writes), so commit validation
// is structurally unable to fail, dooms are refused, and conflict
// arbitration always rules for the token holder. Waiters on its records
// either restart via their self-abort cap or are doomed by the irrevocable
// transaction itself, so it always makes progress.
package stm

import (
	"time"

	"repro/internal/conflict"
	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/recovery"
	"repro/internal/trace"
	"repro/internal/txrec"
)

// die terminates the goroutine's transactional life with no cleanup: the
// orphan's records stay held until a reaper or a conflicting waiter steals
// them. The dead store is the death certificate gating all stealing; it must
// be the last thing the dying goroutine does to the descriptor.
func (tx *Txn) die(p faultinject.Point) {
	tx.dead.Store(true)
	panic(faultinject.OrphanError{Point: p, Txn: tx.id})
}

// finish returns the descriptor to the pool unless the transaction died: a
// dead descriptor's records are (or will be) reclaimed by a reaper, which
// must find the undo log and writes list intact — it is retired, never
// reused.
func (rt *Runtime) finish(tx *Txn) {
	if tx.dead.Load() {
		return
	}
	rt.putTxn(tx)
}

// reapTxn steals a dead transaction's records. Safe by two gates: the dead
// flag (only a goroutine that will never run again sets it, and its
// release-store publishes the descriptor's final state) and the reaping CAS
// (exactly one reclaimer touches the descriptor). An orphan that died before
// its commit point is rolled back — undo replay, compensations, release with
// version bumps — as its own abort would have; one that died past the commit
// point has its release completed, effects intact. Either way every record
// returns to Shared and all waiters unblock. Returns false if tx is not
// confirmed dead or another reclaimer won the race.
func (rt *Runtime) reapTxn(tx *Txn) bool {
	if !tx.dead.Load() || !tx.reaping.CompareAndSwap(false, true) {
		return false
	}
	id := tx.id
	if Status(tx.status.Load()) == Committed {
		// Died inside the commit window (post-commit-point): effects are
		// durable; finish the release exactly as commit would have. Tick
		// the clock BEFORE releasing: unlike an abort, the releases expose
		// changed values (nothing is restored), so clock snapshots that
		// predate them must lose their validation fast path. Ticking first
		// means no transaction can read a released value and still pass
		// the single-compare validation with a pre-release snapshot.
		if rt.clockOn {
			rt.clock.Tick()
		}
		for i := len(tx.writes) - 1; i >= 0; i-- {
			e := tx.writes[i]
			e.obj.Rec.ReleaseOwned(e.version)
		}
		rt.Stats.Commits.AddShard(int(id), 1)
	} else {
		tx.rollbackTo(0, 0, 0)
		tx.status.Store(uint32(Aborted))
		rt.Stats.Aborts.AddShard(int(id), 1)
	}
	if tx.irrevStamp.Load() {
		// The orphan held the irrevocable token; free it for the next taker.
		rt.irrevToken.CompareAndSwap(id, 0)
	}
	rt.Stats.ReaperSteals.AddShard(int(id), 1)
	tx.flushStats()
	if tr := rt.tracer.Load(); tr != nil {
		tr.Record(trace.EvSteal, 0, 0, 0, id)
	}
	rt.reg.remove(tx)
	return true
}

// Recovery exposes the runtime to a recovery.Reaper.
func (rt *Runtime) Recovery() recovery.Target { return eagerTarget{rt} }

type eagerTarget struct{ rt *Runtime }

func (t eagerTarget) Name() string { return "eager" }

func (t eagerTarget) VisitTxns(f func(recovery.TxnInfo)) {
	t.rt.reg.forEach(func(tx *Txn) bool {
		f(recovery.TxnInfo{
			ID:          tx.stamp.Load(),
			Beat:        tx.hb.Load(),
			Status:      Status(tx.status.Load()),
			Dead:        tx.dead.Load(),
			Irrevocable: tx.irrevStamp.Load(),
		})
		return true
	})
}

func (t eagerTarget) Reclaim(id uint64) bool {
	victim := t.rt.reg.findStamp(id)
	if victim == nil {
		return false
	}
	return t.rt.reapTxn(victim)
}

// IsIrrevocable reports whether the transaction has switched to irrevocable
// mode.
func (tx *Txn) IsIrrevocable() bool { return tx.irrevocable }

// BecomeIrrevocable switches the transaction to irrevocable mode: acquire
// the runtime's singular token (waiting while another holder exists; still
// abortable while waiting), then upgrade the read set to Exclusive at the
// recorded versions. If any read-set entry is already stale the transaction
// restarts — aborting is still legal up to the instant the switch completes.
// After a successful switch the transaction can no longer abort, restart, or
// be doomed, and its reads acquire records pessimistically, making it safe
// to perform I/O in the remainder of the body. The body must not return an
// error or call Retry after the switch. Panics on a NoIrrevocable runtime
// (AtomicIrrevocable returns ErrIrrevocableDisabled instead).
func (tx *Txn) BecomeIrrevocable() { tx.becomeIrrevocable(false) }

func (tx *Txn) becomeIrrevocable(escalated bool) {
	if tx.irrevocable {
		return
	}
	rt := tx.rt
	if rt.cfg.NoIrrevocable {
		panic("stm: BecomeIrrevocable on a runtime configured with NoIrrevocable")
	}
	for a := 0; !rt.irrevToken.CompareAndSwap(0, tx.id); a++ {
		// Pre-switch we are still an ordinary transaction: honor dooms and
		// cancellation so token waiters cannot deadlock with the holder.
		if tx.doomed.Load() {
			tx.Restart()
		}
		if tx.ctx != nil && tx.ctx.Err() != nil {
			panic(txSignal{sigCancel, tx})
		}
		tx.hb.Add(1)
		conflict.WaitAttempt(a, 0)
	}
	if !tx.lockReadSet() {
		// A read-set entry went stale before the switch: surrender the token
		// and restart. rollback releases the partially-upgraded records.
		rt.irrevToken.Store(0)
		tx.Restart()
	}
	if escalated {
		rt.Stats.Escalations.AddShard(int(tx.id), 1)
		if tr := tx.tr; tr != nil {
			tr.Record(trace.EvEscalate, tx.id, 0, tx.attempt, 0)
		}
	}
	tx.irrevAt = time.Now()
	tx.irrevocable = true
	tx.irrevStamp.Store(true)
	if tr := tx.tr; tr != nil {
		tr.Record(trace.EvIrrevocable, tx.id, 0, tx.attempt, 0)
	}
}

// lockReadSet upgrades every read-set entry to Exclusive at its recorded
// version. With the whole read set owned, no other transaction can invalidate
// it, so commit validation trivially passes — the mechanism behind the
// no-abort guarantee. Acquired records are appended to writes/owned so the
// failure path (ordinary restart) releases them with version bumps. Returns
// false if any entry is stale or cannot be acquired at the recorded version.
func (tx *Txn) lockReadSet() bool {
	ok := true
	tx.reads.Range(func(o *objmodel.Object, ver uint64) bool {
		w := o.Rec.Load()
		switch {
		case txrec.IsPrivate(w):
			// Only this thread ever saw it; nothing to lock.
			return true
		case txrec.IsExclusive(w) && txrec.Owner(w) == tx.id:
			// Already ours (read after write): valid iff acquired at the
			// version we read.
			if ov, _ := tx.owned.Get(o); ov != ver {
				ok = false
			}
			return ok
		case txrec.IsShared(w) && txrec.Version(w) == ver:
			if !o.Rec.CompareAndSwap(w, txrec.MakeExclusive(tx.id)) {
				// Lost a race; a retry loop here could wait forever on a
				// foreign owner, and release always bumps the version, so the
				// entry can only come back stale. Fail fast and restart.
				ok = false
			} else {
				tx.writes = append(tx.writes, ownedEntry{o, ver})
				tx.owned.Put(o, ver)
			}
			return ok
		default:
			// Foreign-owned or version moved: the snapshot is already stale.
			ok = false
			return false
		}
	})
	return ok
}

// dropIrrevocable surrenders the irrevocable token after the transaction's
// records have been released, and accounts the hold time. No-op for ordinary
// transactions.
func (tx *Txn) dropIrrevocable() {
	if !tx.irrevocable {
		return
	}
	hold := time.Since(tx.irrevAt)
	tx.irrevocable = false
	tx.irrevStamp.Store(false)
	tx.rt.irrevToken.Store(0)
	tx.rt.Stats.IrrevocableTxns.AddShard(int(tx.id), 1)
	tx.rt.Stats.IrrevocableNs.AddShard(int(tx.id), hold.Nanoseconds())
	if tr := tx.tr; tr != nil {
		tr.ObserveIrrevocableHold(hold)
	}
}
