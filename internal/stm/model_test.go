package stm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

// TestSequentialModelEquivalence drives the STM with random operation
// sequences — reads, writes, nested blocks, user aborts, restarts — on a
// single thread and checks the heap afterwards against a plain in-memory
// model executing the same sequence. This exercises the undo log,
// savepoints, and release paths deterministically.
func TestSequentialModelEquivalence(t *testing.T) {
	type op struct {
		Kind  uint8 // 0 write, 1 nested-commit, 2 nested-abort, 3 read-check, 4 restart-once
		Obj   uint8
		Slot  uint8
		Value uint8
	}
	f := func(ops []op, seed int64) bool {
		const nObjs, nSlots = 4, 3
		fx := newFixture(t, Config{})
		objs := make([]*objmodel.Object, nObjs)
		for i := range objs {
			objs[i] = fx.newCell()
		}
		model := make([][]uint64, nObjs)
		for i := range model {
			model[i] = make([]uint64, nSlots)
		}
		rng := rand.New(rand.NewSource(seed))

		i := 0
		restarted := false
		err := fx.rt.Atomic(nil, func(tx *Txn) error {
			// On restart, re-execute from the beginning like the VM does.
			i = 0
			shadow := make([][]uint64, nObjs)
			for k := range shadow {
				shadow[k] = append([]uint64(nil), model[k]...)
			}
			for ; i < len(ops); i++ {
				o := ops[i]
				obj := objs[o.Obj%nObjs]
				slot := int(o.Slot % nSlots)
				switch o.Kind % 5 {
				case 0:
					tx.Write(obj, slot, uint64(o.Value))
					shadow[o.Obj%nObjs][slot] = uint64(o.Value)
				case 1: // nested block that commits
					_ = fx.rt.Atomic(tx, func(tx *Txn) error {
						tx.Write(obj, slot, uint64(o.Value)+1)
						return nil
					})
					shadow[o.Obj%nObjs][slot] = uint64(o.Value) + 1
				case 2: // nested block that aborts: no model effect
					_ = fx.rt.Atomic(tx, func(tx *Txn) error {
						tx.Write(obj, slot, 999)
						return ErrAborted
					})
				case 3: // read must match the shadow state
					if got := tx.Read(obj, slot); got != shadow[o.Obj%nObjs][slot] {
						t.Errorf("read %d, shadow %d", got, shadow[o.Obj%nObjs][slot])
					}
				case 4: // occasional restart exercises full rollback
					if !restarted && rng.Intn(4) == 0 {
						restarted = true
						tx.Restart()
					}
				}
			}
			// Commit: publish shadow into the model.
			for k := range shadow {
				copy(model[k], shadow[k])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("atomic: %v", err)
		}
		for k, obj := range objs {
			for s := 0; s < nSlots; s++ {
				if obj.LoadSlot(s) != model[k][s] {
					t.Errorf("obj %d slot %d: heap %d, model %d", k, s, obj.LoadSlot(s), model[k][s])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestVersionsNeverDecrease: across arbitrary concurrent transactional and
// barrier-style activity, each object's shared version is monotone.
func TestVersionsNeverDecrease(t *testing.T) {
	fx := newFixture(t, Config{})
	o := fx.newCell()
	stop := make(chan struct{})
	var maxSeen uint64
	var bad int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // observer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := o.Rec.Load()
			if txrec.IsShared(w) {
				v := txrec.Version(w)
				if v < maxSeen {
					bad++
				} else {
					maxSeen = v
				}
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 500; i++ {
				if g%2 == 0 {
					_ = fx.rt.Atomic(nil, func(tx *Txn) error {
						tx.Write(o, 0, tx.Read(o, 0)+1)
						if i%7 == 0 {
							return ErrAborted
						}
						return nil
					})
				} else {
					for {
						if _, ok := o.Rec.AcquireAnon(); ok {
							break
						}
					}
					o.StoreSlot(1, uint64(i))
					o.Rec.ReleaseAnon()
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	if bad != 0 {
		t.Errorf("observed %d version decreases", bad)
	}
}

// TestRandomTransfersPreserveSum: concurrent random transfers between
// cells keep the total constant under any interleaving — the classic STM
// serializability stress, with user aborts mixed in.
func TestRandomTransfersPreserveSum(t *testing.T) {
	fx := newFixture(t, Config{})
	const nCells = 6
	cells := make([]*objmodel.Object, nCells)
	for i := range cells {
		cells[i] = fx.newCell()
		cells[i].StoreSlot(0, 100)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				from, to := rng.Intn(nCells), rng.Intn(nCells)
				amt := uint64(rng.Intn(5))
				abort := rng.Intn(10) == 0
				_ = fx.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(cells[from], 0, tx.Read(cells[from], 0)-amt)
					tx.Write(cells[to], 0, tx.Read(cells[to], 0)+amt)
					if abort {
						return ErrAborted
					}
					return nil
				})
			}
		}(int64(g))
	}
	wg.Wait()
	var total int64
	for _, c := range cells {
		total += int64(c.LoadSlot(0))
	}
	if total != nCells*100 {
		t.Errorf("total = %d, want %d", total, nCells*100)
	}
	for _, c := range cells {
		w := c.Rec.Load()
		if !txrec.IsShared(w) {
			t.Errorf("cell record leaked in state %v", txrec.StateOf(w))
		}
	}
}

// TestQuiescencePrivatizationStress: with quiescence enabled, a thread
// that privatizes a node out of a shared structure can use plain
// (unbarriered!) accesses afterwards — the Section 3.4 guarantee — even
// while doomed transactions are still running.
func TestQuiescencePrivatizationStress(t *testing.T) {
	fx := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	holder := fx.newCell() // slot 2 (ref) points at the current item
	const rounds = 150
	var violations int
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Mutator transactions keep incrementing both fields of the shared item.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = fx.rt.Atomic(nil, func(tx *Txn) error {
					r := tx.ReadRef(holder, 2)
					if r == 0 {
						return nil
					}
					item := fx.heap.Get(r)
					tx.Write(item, 0, tx.Read(item, 0)+1)
					tx.Write(item, 1, tx.Read(item, 1)+1)
					return nil
				})
			}
		}()
	}
	for round := 0; round < rounds; round++ {
		item := fx.newCell()
		_ = fx.rt.Atomic(nil, func(tx *Txn) error {
			tx.WriteRef(holder, 2, item.Ref())
			return nil
		})
		// Privatize: after this transaction (plus quiescence), no
		// transaction may still touch the item.
		_ = fx.rt.Atomic(nil, func(tx *Txn) error {
			tx.WriteRef(holder, 2, 0)
			return nil
		})
		a := item.LoadSlot(0) // plain, unbarriered reads
		b := item.LoadSlot(1)
		if a != b {
			violations++
		}
	}
	close(stop)
	wg.Wait()
	if violations != 0 {
		t.Errorf("%d privatization violations despite quiescence", violations)
	}
}
