package stm

// Fault-injection tests: inject aborts at every doom site under concurrency
// and assert the invariants that make abort safe — no lost undo entries
// (money is conserved), records return to Shared, quiescence never hangs —
// and inject crashes at each point asserting the stage-appropriate cleanup.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/objmodel"
	"repro/internal/stmapi"
	"repro/internal/txrec"
)

// abortPoints are the sites where an injected Abort exercises the ordinary
// doom/restart machinery (PreRelease aborts on the abort path itself are
// meaningless; PostCommitPoint cannot abort past the commit point).
var abortPoints = []faultinject.Point{
	faultinject.PreAcquire,
	faultinject.PostAcquire,
	faultinject.PreValidate,
}

// runTransfers drives a concurrent transfer workload: G goroutines, each
// committing n transactions moving one unit between two pseudo-random
// accounts. Total balance is invariant iff rollback replays every undo
// entry.
func runTransfers(t *testing.T, f *fixture, accounts []*objmodel.Object, goroutines, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*2862933555777941757 + 3037000493
			for i := 0; i < n; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := accounts[rng%uint64(len(accounts))]
				to := accounts[(rng>>8)%uint64(len(accounts))]
				if from == to {
					continue
				}
				if err := f.rt.Atomic(nil, func(tx *Txn) error {
					a := tx.Read(from, 0)
					b := tx.Read(to, 0)
					tx.Write(from, 0, a-1)
					tx.Write(to, 0, b+1)
					return nil
				}); err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
}

func TestInjectedAbortsPreserveInvariants(t *testing.T) {
	for _, p := range abortPoints {
		t.Run(p.String(), func(t *testing.T) {
			f := newFixture(t, Config{})
			in := faultinject.New(uint64(p)+1, faultinject.Rule{
				Point: p, Action: faultinject.Abort, Rate: 256,
			})
			f.rt.SetInjector(in)
			const accounts, balance = 8, 1000
			objs := make([]*objmodel.Object, accounts)
			for i := range objs {
				objs[i] = f.newCell()
				objs[i].StoreSlot(0, balance)
			}
			runTransfers(t, f, objs, 4, 300)

			if in.Fired(p, faultinject.Abort) == 0 {
				t.Fatalf("injector never fired at %v; test exercised nothing", p)
			}
			var sum uint64
			for i, o := range objs {
				if w := o.Rec.Load(); !txrec.IsShared(w) {
					t.Errorf("account %d record %#x not back to Shared", i, w)
				}
				sum += o.LoadSlot(0)
			}
			if sum != accounts*balance {
				t.Errorf("total balance %d, want %d (undo entries lost)", sum, accounts*balance)
			}
			if n := f.rt.ActiveTransactions(); n != 0 {
				t.Errorf("active transactions = %d, want 0", n)
			}
			s := f.rt.Stats.Snapshot()
			if s.Aborts == 0 {
				t.Errorf("no aborts recorded despite %d injected", in.Fired(p, faultinject.Abort))
			}
		})
	}
}

func TestInjectedAbortsWithQuiescenceNeverHang(t *testing.T) {
	f := newFixture(t, Config{CommonConfig: stmapi.CommonConfig{Quiescence: true}})
	rules := make([]faultinject.Rule, len(abortPoints))
	for i, p := range abortPoints {
		rules[i] = faultinject.Rule{Point: p, Action: faultinject.Abort, Rate: 128}
	}
	in := faultinject.New(7, rules...)
	f.rt.SetInjector(in)
	objs := make([]*objmodel.Object, 4)
	for i := range objs {
		objs[i] = f.newCell()
		objs[i].StoreSlot(0, 100)
	}
	// Completing at all (inside the test timeout) is the assertion: a
	// doomed transaction must never leave the quiescence scan spinning.
	runTransfers(t, f, objs, 4, 200)
	if in.TotalFired() == 0 {
		t.Fatalf("injector never fired")
	}
	if n := f.rt.ActiveTransactions(); n != 0 {
		t.Fatalf("active transactions = %d, want 0", n)
	}
}

func TestInjectedCrashCleansUpPerStage(t *testing.T) {
	crashPoints := []struct {
		point     faultinject.Point
		committed bool // effects durable after the crash?
	}{
		{faultinject.PreAcquire, false},
		{faultinject.PostAcquire, false},
		{faultinject.PreValidate, false},
		{faultinject.PostCommitPoint, true},
	}
	for _, c := range crashPoints {
		t.Run(c.point.String(), func(t *testing.T) {
			f := newFixture(t, Config{})
			f.rt.SetInjector(faultinject.New(1, faultinject.Rule{
				Point: c.point, Action: faultinject.Crash,
			}))
			o := f.newCell()
			o.StoreSlot(0, 10)
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						ce, ok := r.(faultinject.CrashError)
						if !ok {
							panic(r)
						}
						err = ce
					}
				}()
				return f.rt.Atomic(nil, func(tx *Txn) error {
					tx.Write(o, 0, 20)
					return nil
				})
			}()
			var ce faultinject.CrashError
			if !errors.As(err, &ce) || ce.Point != c.point {
				t.Fatalf("err = %v, want CrashError at %v", err, c.point)
			}
			if w := o.Rec.Load(); !txrec.IsShared(w) {
				t.Fatalf("record %#x not released after crash", w)
			}
			want := uint64(10)
			if c.committed {
				want = 20
			}
			if got := o.LoadSlot(0); got != want {
				t.Fatalf("slot 0 = %d, want %d", got, want)
			}
			if n := f.rt.ActiveTransactions(); n != 0 {
				t.Fatalf("active transactions = %d, want 0", n)
			}
			// The record must be usable by later transactions.
			f.rt.SetInjector(nil)
			if err := f.rt.Atomic(nil, func(tx *Txn) error {
				tx.Write(o, 1, 1)
				return nil
			}); err != nil {
				t.Fatalf("post-crash transaction: %v", err)
			}
		})
	}
}

func TestInjectedCrashOnAbortPath(t *testing.T) {
	f := newFixture(t, Config{})
	f.rt.SetInjector(faultinject.New(1, faultinject.Rule{
		Point: faultinject.PreRelease, Action: faultinject.Crash,
	}))
	o := f.newCell()
	o.StoreSlot(0, 10)
	boom := fmt.Errorf("user abort")
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				ce, ok := r.(faultinject.CrashError)
				if !ok {
					panic(r)
				}
				err = ce
			}
		}()
		return f.rt.Atomic(nil, func(tx *Txn) error {
			tx.Write(o, 0, 20)
			return boom // abort path: PreRelease fires inside abort()
		})
	}()
	var ce faultinject.CrashError
	if !errors.As(err, &ce) || ce.Point != faultinject.PreRelease {
		t.Fatalf("err = %v, want CrashError at pre-release", err)
	}
	if w := o.Rec.Load(); !txrec.IsShared(w) {
		t.Fatalf("record %#x not released after abort-path crash", w)
	}
	if got := o.LoadSlot(0); got != 10 {
		t.Fatalf("slot 0 = %d, want 10 (rolled back)", got)
	}
}

func TestInjectedDelayWidensRaceWindows(t *testing.T) {
	// Delay is behavioral grease for the litmus programs; here just assert
	// it neither aborts nor corrupts anything.
	f := newFixture(t, Config{})
	in := faultinject.New(3, faultinject.Rule{
		Point: faultinject.PostAcquire, Action: faultinject.Delay, Every: 4, Sleep: 1,
	})
	f.rt.SetInjector(in)
	objs := make([]*objmodel.Object, 4)
	for i := range objs {
		objs[i] = f.newCell()
		objs[i].StoreSlot(0, 100)
	}
	runTransfers(t, f, objs, 2, 100)
	var sum uint64
	for _, o := range objs {
		sum += o.LoadSlot(0)
	}
	if sum != 400 {
		t.Fatalf("total balance %d, want 400", sum)
	}
	if in.Fired(faultinject.PostAcquire, faultinject.Delay) == 0 {
		t.Fatalf("delay never fired")
	}
}
