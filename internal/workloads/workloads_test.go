package workloads

import (
	"testing"

	"repro/internal/opt"
	"repro/internal/vm"
)

// modesForKind returns the execution modes a workload must agree across.
func modesForKind(k Kind, args []int64) []vm.Mode {
	base := []vm.Mode{
		{Sync: vm.SyncLock, Args: args, Seed: 11},
		{Sync: vm.SyncSTM, Versioning: vm.Eager, Args: args, Seed: 11},
		{Sync: vm.SyncSTM, Versioning: vm.Lazy, Args: args, Seed: 11},
		{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Args: args, Seed: 11},
		{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, DEA: true, Args: args, Seed: 11},
		{Sync: vm.SyncSTM, Versioning: vm.Lazy, Strong: true, Args: args, Seed: 11},
	}
	return base
}

// lockArgs rewrites a Txn workload's args to the synchronized variant.
func lockArgs(args []int64) []int64 {
	out := append([]int64(nil), args...)
	out[2] = 0
	return out
}

// TestWorkloadsAgreeAcrossModes compiles every workload at O0 and checks
// that all execution modes produce identical output — the deterministic
// checksums make cross-mode agreement a strong end-to-end correctness
// check of both STMs, the barriers, and the lock runtime.
func TestWorkloadsAgreeAcrossModes(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, _, err := w.Compile(opt.O0NoOpts, 1)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			args := w.CheckArgs
			want := ""
			for i, mode := range modesForKind(w.Kind, args) {
				if w.Kind == Txn && mode.Sync == vm.SyncLock {
					mode.Args = lockArgs(args)
				}
				got, _, err := Run(prog, mode)
				if err != nil {
					t.Fatalf("mode %d: %v", i, err)
				}
				if i == 0 {
					want = got
					if want == "" {
						t.Fatal("no output")
					}
					continue
				}
				if got != want {
					t.Errorf("mode %d output %q, want %q", i, got, want)
				}
			}
		})
	}
}

// TestWorkloadsAgreeAcrossOptLevels runs each workload at every
// optimization level under the full strong system and checks that barrier
// removal and aggregation never change results.
func TestWorkloadsAgreeAcrossOptLevels(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want := ""
			for lvl := opt.O0NoOpts; lvl <= opt.O4WholeProg; lvl++ {
				prog, _, err := w.Compile(lvl, 1)
				if err != nil {
					t.Fatalf("%v: compile: %v", lvl, err)
				}
				mode := vm.Mode{
					Sync: vm.SyncSTM, Versioning: vm.Eager,
					Strong: true, DEA: lvl.DEAEnabled(),
					Args: w.CheckArgs, Seed: 11,
				}
				got, _, err := Run(prog, mode)
				if err != nil {
					t.Fatalf("%v: run: %v", lvl, err)
				}
				if lvl == opt.O0NoOpts {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%v output %q, want %q", lvl, got, want)
				}
			}
		})
	}
}

// TestNAITRemovesEverythingInJVM98 reproduces the paper's Section 7 claim:
// "for non-transactional programs not-accessed-in-transaction analysis
// removes all the barriers".
func TestNAITRemovesEverythingInJVM98(t *testing.T) {
	for _, w := range JVM98() {
		_, rep, err := w.Compile(opt.O4WholeProg, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		wp := rep.WholeProg
		if wp.NAITReads != wp.TotalReads || wp.NAITWrites != wp.TotalWrites {
			t.Errorf("%s: NAIT removed %d/%d reads, %d/%d writes; want all",
				w.Name, wp.NAITReads, wp.TotalReads, wp.NAITWrites, wp.TotalWrites)
		}
	}
}

// TestTxnWorkloadsKeepSomeBarriers: the transactional benchmarks access
// shared data both ways, so NAIT must keep some barriers (e.g. Tsp's
// non-transactional bound check against the transactionally-updated best).
func TestTxnWorkloadsKeepSomeBarriers(t *testing.T) {
	for _, w := range TxnSuite() {
		_, rep, err := w.Compile(opt.O4WholeProg, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		wp := rep.WholeProg
		removed := wp.UnionReads + wp.UnionWrites
		total := wp.TotalReads + wp.TotalWrites
		if removed == total {
			t.Errorf("%s: all %d barriers removed; expected residual barriers on txn-shared data", w.Name, total)
		}
		if removed == 0 {
			t.Errorf("%s: no barriers removed; NAIT should still remove txn-free accesses", w.Name)
		}
	}
}

// TestBarrierCountsDropAcrossLevels: each level should strictly not
// increase the number of active barriers.
func TestBarrierCountsDropAcrossLevels(t *testing.T) {
	for _, w := range All() {
		prev := -1
		for lvl := opt.O0NoOpts; lvl <= opt.O4WholeProg; lvl++ {
			prog, _, err := w.Compile(lvl, 1)
			if err != nil {
				t.Fatal(err)
			}
			active := 0
			for _, m := range prog.Methods {
				for _, b := range m.Blocks {
					for i := range b.Instrs {
						in := &b.Instrs[i]
						if in.Op.IsMemAccess() && !in.Atomic && in.Barrier.Active() {
							active++
						}
					}
				}
			}
			if prev >= 0 && active > prev {
				t.Errorf("%s: active barriers grew from %d to %d at %v", w.Name, prev, active, lvl)
			}
			prev = active
		}
	}
}

// TestTxnWorkloadsScaleThreads smoke-tests thread counts 1, 2, 4 for the
// transactional suite under strong atomicity: same final answer whatever
// the parallelism, since outputs are interleaving-independent.
func TestTxnWorkloadsScaleThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping scaling smoke test in -short mode")
	}
	for _, w := range TxnSuite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog, _, err := w.Compile(opt.O2Aggregate, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := ""
			for _, threads := range []int{1, 2, 4} {
				args := append([]int64(nil), w.CheckArgs...)
				args[0] = int64(threads)
				got, _, err := Run(prog, vm.Mode{
					Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true,
					Args: args, Seed: 11,
				})
				if err != nil {
					t.Fatalf("threads=%d: %v", threads, err)
				}
				if w.Name != "tsp" {
					// OO7 and JBB scale total work with the thread count, so
					// outputs differ across thread counts by design; instead
					// verify determinism: a second identical run must agree.
					again, _, err := Run(prog, vm.Mode{
						Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true,
						Args: args, Seed: 11,
					})
					if err != nil {
						t.Fatalf("threads=%d rerun: %v", threads, err)
					}
					if again != got {
						t.Errorf("threads=%d nondeterministic: %q then %q", threads, got, again)
					}
					continue
				}
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("threads=%d output %q, want %q", threads, got, want)
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("tsp"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
