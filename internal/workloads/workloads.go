package workloads

import (
	"fmt"
	"strings"

	"repro/internal/lang/ir"
	"repro/internal/opt"
	"repro/internal/tj"
	"repro/internal/vm"
)

// Kind classifies a workload.
type Kind uint8

// Workload kinds.
const (
	NonTxn Kind = iota // single-threaded, no transactions (JVM98 suite)
	Txn                // multi-threaded transactional benchmark
)

// Workload is one benchmark program.
type Workload struct {
	Name   string
	Kind   Kind
	Source string

	// CheckArgs are small arguments for correctness tests.
	CheckArgs []int64

	// BenchArgs builds arguments for a benchmark run. For Txn workloads the
	// useTxn flag selects atomic blocks (true) or synchronized (false);
	// scale stretches the work.
	BenchArgs func(threads, scale int, useTxn bool) []int64
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// JVM98 returns the seven-kernel non-transactional suite (Figures 15–17).
func JVM98() []Workload {
	return []Workload{
		{
			Name: "compress", Kind: NonTxn, Source: srcCompress,
			CheckArgs: []int64{2000, 3},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{8192, int64(60 * scale)} },
		},
		{
			Name: "jess", Kind: NonTxn, Source: srcJess,
			CheckArgs: []int64{50, 4},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{120, int64(100 * scale)} },
		},
		{
			Name: "db", Kind: NonTxn, Source: srcDb,
			CheckArgs: []int64{500, 2000},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{2048, int64(150000 * scale)} },
		},
		{
			Name: "javac", Kind: NonTxn, Source: srcJavac,
			CheckArgs: []int64{6, 20},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{10, int64(60 * scale)} },
		},
		{
			Name: "mpegaudio", Kind: NonTxn, Source: srcMpegaudio,
			CheckArgs: []int64{50},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{int64(1500 * scale)} },
		},
		{
			Name: "mtrt", Kind: NonTxn, Source: srcMtrt,
			CheckArgs: []int64{40, 500},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{64, int64(6000 * scale)} },
		},
		{
			Name: "jack", Kind: NonTxn, Source: srcJack,
			CheckArgs: []int64{800, 5},
			BenchArgs: func(_, scale int, _ bool) []int64 { return []int64{4096, int64(60 * scale)} },
		},
	}
}

// Tsp returns the traveling-salesman benchmark (Figure 18).
func Tsp() Workload {
	return Workload{
		Name: "tsp", Kind: Txn, Source: srcTsp,
		CheckArgs: []int64{3, 8, 1},
		BenchArgs: func(threads, scale int, useTxn bool) []int64 {
			n := int64(9)
			if scale > 1 {
				n = 10
			}
			return []int64{int64(threads), n, b2i(useTxn)}
		},
	}
}

// OO7 returns the OO7 database-traversal benchmark (Figure 19).
func OO7() Workload {
	return Workload{
		Name: "oo7", Kind: Txn, Source: srcOO7,
		CheckArgs: []int64{3, 30, 1, 2, 3},
		BenchArgs: func(threads, scale int, useTxn bool) []int64 {
			return []int64{int64(threads), int64(25 * scale), b2i(useTxn), 3, 4}
		},
	}
}

// JBB returns the SpecJBB-analog benchmark (Figure 20).
func JBB() Workload {
	return Workload{
		Name: "jbb", Kind: Txn, Source: srcJBB,
		CheckArgs: []int64{3, 60, 1, 64},
		BenchArgs: func(threads, scale int, useTxn bool) []int64 {
			return []int64{int64(threads), int64(800 * scale), b2i(useTxn), 256}
		},
	}
}

// TxnSuite returns the three transactional benchmarks.
func TxnSuite() []Workload { return []Workload{Tsp(), OO7(), JBB()} }

// All returns every workload.
func All() []Workload { return append(JVM98(), TxnSuite()...) }

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Compile compiles a workload at an optimization level.
func (w Workload) Compile(level opt.Level, granularity int) (*ir.Program, *opt.Report, error) {
	return tj.CompileLevel(w.Source, level, granularity)
}

// CompileOptions compiles a workload with explicit pass options.
func (w Workload) CompileOptions(o opt.Options) (*ir.Program, *opt.Report, error) {
	return tj.Compile(w.Source, o)
}

// Run executes a compiled workload and returns its printed output
// (whitespace-trimmed) and the VM for statistics inspection.
func Run(prog *ir.Program, mode vm.Mode) (string, *vm.VM, error) {
	var out strings.Builder
	m, err := vm.New(prog, mode, &out)
	if err != nil {
		return "", nil, err
	}
	if err := m.Run(); err != nil {
		return "", m, err
	}
	return strings.TrimSpace(out.String()), m, nil
}
