package elidewl_test

import (
	"testing"

	"repro/internal/analysis/oracle"
	"repro/internal/causal"
	"repro/internal/objmodel"
	"repro/internal/trace"
	"repro/internal/vetstm/interproc"
	"repro/internal/vetstm/vetload"
	"repro/internal/workloads/elidewl"
)

// The workload self-validates, so a bare run is already a correctness
// check of the full Figure 9 barrier paths under -race.
func TestRunWithoutManifest(t *testing.T) {
	res, err := elidewl.Run(elidewl.Config{Workers: 2, Items: 64, Scratch: 256, TxnOps: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrivateReads.Load() != 0 || res.Stats.PrivateWrites.Load() != 0 {
		t.Fatalf("no manifest, but private fast paths fired: reads=%d writes=%d",
			res.Stats.PrivateReads.Load(), res.Stats.PrivateWrites.Load())
	}
	if res.ScratchOps <= 0 || res.ScratchNS <= 0 {
		t.Fatalf("scratch phase not measured: ops=%d ns=%d", res.ScratchOps, res.ScratchNS)
	}
}

// End-to-end under -race: build the manifest with the real whole-program
// analyses, run the workload under it with the soundness oracle watching
// every allocation, NT access, and transactional access. The manifest
// must elide (private fast paths fire) and the oracle must stay silent.
func TestRunUnderAnalyzedManifestWithOracle(t *testing.T) {
	root, err := vetload.ModuleDir(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := vetload.Load(root, "./internal/workloads/elidewl")
	if err != nil {
		t.Fatal(err)
	}
	res, err := interproc.Analyze(pkgs, interproc.Options{Tool: "test"})
	if err != nil {
		t.Fatal(err)
	}

	rec := causal.NewRecorder(causal.Config{})
	tracer := trace.New(trace.Config{})
	var orc *oracle.Oracle
	var obs func(*objmodel.Object, int, bool)
	out, err := elidewl.Run(elidewl.Config{
		Workers: 2, Items: 64, Scratch: 256, TxnOps: 64,
		Manifest: res.Manifest,
		Tracer:   tracer,
		OnSetup: func(h *objmodel.Heap) {
			orc = oracle.Attach(h, oracle.Config{Recorder: rec})
			obs = orc.BarrierObserver()
			tracer.SetSink(orc)
		},
		Observer: func(o *objmodel.Object, slot int, write bool) { obs(o, slot, write) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.PrivateReads.Load() == 0 && out.Stats.PrivateWrites.Load() == 0 {
		t.Fatal("manifest applied but no private fast path ever fired")
	}
	if err := orc.Err(); err != nil {
		t.Fatalf("soundness oracle breached on the analyzed manifest: %v", err)
	}
	if orc.Tracked() == 0 {
		t.Fatal("oracle tracked no manifest-matched allocations")
	}
}
