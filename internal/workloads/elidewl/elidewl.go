// Package elidewl is the barrier-elision benchmark workload: a
// self-contained program whose allocation sites exercise every class the
// whole-program NAIT/TL analyses (internal/vetstm/interproc) can prove.
// `stmvet elide ./internal/workloads/elidewl` — or, in-process,
// bench.BuildElideManifest — classifies exactly these sites:
//
//   - scratch objects: allocated per worker, hammered through the NT
//     barriers, never escaping the goroutine → nait+tl. These carry the
//     measurable win: manifest-born-private objects ride the Figure 10
//     one-load fast path instead of the acquire/release write barrier.
//   - handoff items: allocated by a producer, initialized through NT
//     barriers, and passed to a consumer goroutine by writing their
//     reference into a public mailbox (the Figure 10b publication walk)
//     → nait (shared, but never touched inside a transaction).
//   - the mailbox array: cross-goroutine, NT-only → nait; published
//     eagerly at construction, so handoff always goes through the
//     protected state.
//   - shared counters: transactionally bumped by every worker → mixed,
//     hot enough for a slot-granularity hint.
//
// The workload is deliberately a leaf: it imports only the runtime
// packages, so the analysis of this one package sees each object's whole
// lifecycle and the classification is exact, not conservatively widened
// by unknown callers. Run self-validates (handoff checksum, counter
// totals) so an unsound elision shows up as a wrong answer, not just a
// fast one.
package elidewl

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/elide"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/strong"
	"repro/internal/trace"
)

// Config sizes one workload run.
type Config struct {
	Workers int // producer/consumer pairs
	Items   int // handoff objects per producer
	Scratch int // scratch write+read rounds per worker
	TxnOps  int // transactions per worker on the shared counters

	// Manifest, when non-nil, is applied to the heap before any
	// allocation (the B side of the A/B measurement).
	Manifest *elide.Manifest

	// Tracer, when non-nil, is installed on the STM runtime (the
	// soundness oracle consumes transactional accesses through it).
	Tracer *trace.Tracer

	// OnSetup, when non-nil, runs after the manifest is applied and
	// before anything is allocated — the oracle attaches its allocation
	// observer here.
	OnSetup func(h *objmodel.Heap)

	// Observer, when non-nil, is installed as the barriers' access
	// observer (the oracle's NT side). Leave nil when timing.
	Observer func(o *objmodel.Object, slot int, write bool)
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Items <= 0 {
		c.Items = 512
	}
	if c.Scratch <= 0 {
		c.Scratch = 8192
	}
	if c.TxnOps <= 0 {
		c.TxnOps = 512
	}
}

// Result reports one run.
type Result struct {
	Elapsed time.Duration
	Stats   *strong.Stats // NT-barrier counters (reads/writes, private hits)
	Handoff uint64        // checksum of consumed item values

	// ScratchNS/ScratchOps isolate the pure NT-barrier cost: the scratch
	// loops run back-to-back barriered accesses with no scheduling or
	// allocation in the timed region, so their per-op time is the clean
	// A/B signal (total Elapsed is dominated by handoff ping-pong).
	ScratchNS  int64
	ScratchOps int64
}

// Run executes the workload once and verifies its own answers.
func Run(cfg Config) (Result, error) {
	cfg.defaults()

	h := objmodel.NewHeap()
	if cfg.Manifest != nil {
		h.ApplyManifest(cfg.Manifest)
	}
	if cfg.OnSetup != nil {
		cfg.OnSetup(h)
	}

	itemCls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "elidewl.Item",
		Fields: []objmodel.Field{{Name: "val"}, {Name: "seq"}},
	})
	scrCls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "elidewl.Scratch",
		Fields: []objmodel.Field{{Name: "acc"}, {Name: "tmp"}},
	})
	cntCls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "elidewl.Counter",
		Fields: []objmodel.Field{{Name: "a"}, {Name: "b"}},
	})

	bars := strong.New(h, false)
	st := &strong.Stats{}
	bars.Stats = st
	if cfg.Observer != nil {
		bars.Observer = cfg.Observer
	}
	rt := stm.New(h, stm.Config{})
	if cfg.Tracer != nil {
		rt.SetTracer(cfg.Tracer)
	}

	// Shared counters: every worker transactionally bumps two of them per
	// transaction — the mixed, hot sites.
	counters := make([]*objmodel.Object, cfg.Workers)
	for i := range counters {
		counters[i] = h.New(cntCls)
	}

	// The handoff mailbox: one reference slot per worker pair, public by
	// construction so writing an item's reference into it publishes the
	// item (Figure 10b) before the consumer can see it.
	mbox := h.NewArray(cfg.Workers, true)
	h.Publish(mbox)

	var wg sync.WaitGroup
	var scratchNS int64
	sums := make([]uint64, cfg.Workers)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(2)
		// Producer: private scratch work, item handoffs, counter txns.
		go func(w int) {
			defer wg.Done()

			// nait+tl: never escapes this goroutine, NT accesses only.
			scr := h.New(scrCls)
			acc := uint64(0)
			t0 := time.Now()
			for i := 0; i < cfg.Scratch; i++ {
				bars.Write(scr, 0, acc+uint64(i))
				acc = bars.Read(scr, 0)
			}
			bars.Write(scr, 1, acc)
			atomic.AddInt64(&scratchNS, time.Since(t0).Nanoseconds())

			for i := 0; i < cfg.Items; i++ {
				// nait: initialized privately, then published by the
				// mailbox write; the consumer reads it NT — no transaction
				// ever touches an item.
				item := h.New(itemCls)
				bars.Write(item, 0, uint64(i))
				bars.Write(item, 1, uint64(w))
				bars.WriteRef(mbox, w, item.Ref())
				for bars.ReadRef(mbox, w) != 0 {
					runtime.Gosched() // wait for the consumer's ack
				}
			}

			for i := 0; i < cfg.TxnOps; i++ {
				if err := rt.Atomic(nil, func(tx *stm.Txn) error {
					c := counters[w]
					tx.Write(c, 0, tx.Read(c, 0)+1)
					n := counters[(w+1)%cfg.Workers]
					tx.Write(n, 1, tx.Read(n, 1)+1)
					return nil
				}); err != nil {
					panic(err) // Atomic without Retry/cancel cannot fail
				}
			}
		}(w)
		// Consumer: receives each item through the managed heap.
		go func(w int) {
			defer wg.Done()
			var sum uint64
			for i := 0; i < cfg.Items; i++ {
				var r objmodel.Ref
				for r = bars.ReadRef(mbox, w); r == 0; r = bars.ReadRef(mbox, w) {
					runtime.Gosched()
				}
				o := h.Get(r)
				sum += bars.Read(o, 0)
				bars.WriteRef(mbox, w, 0) // ack
			}
			sums[w] = sum
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Self-validation: an unsound elision must surface as a wrong answer.
	wantSum := uint64(cfg.Items) * uint64(cfg.Items-1) / 2
	var handoff uint64
	for w, s := range sums {
		if s != wantSum {
			return Result{}, fmt.Errorf("elidewl: worker %d handoff sum = %d, want %d", w, s, wantSum)
		}
		handoff += s
	}
	var bumped uint64
	for _, c := range counters {
		bumped += bars.Read(c, 0) + bars.Read(c, 1)
	}
	wantBumps := uint64(cfg.Workers) * uint64(cfg.TxnOps) * 2
	if bumped != wantBumps {
		return Result{}, fmt.Errorf("elidewl: counter total = %d, want %d", bumped, wantBumps)
	}

	return Result{
		Elapsed:    elapsed,
		Stats:      st,
		Handoff:    handoff,
		ScratchNS:  scratchNS,
		ScratchOps: int64(cfg.Workers) * (2*int64(cfg.Scratch) + 1),
	}, nil
}
