package workloads

import (
	"testing"

	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
)

func TestNewStampUnknown(t *testing.T) {
	h := objmodel.NewHeap()
	if _, err := NewStamp("nope", h); err == nil {
		t.Fatal("NewStamp(nope) did not error")
	}
}

// TestStampBodiesCommit drives each workload body through the eager runtime
// and checks every transaction commits (the mixes must be runnable, not
// just well-typed).
func TestStampBodiesCommit(t *testing.T) {
	for _, name := range StampNames() {
		t.Run(name, func(t *testing.T) {
			h := objmodel.NewHeap()
			w, err := NewStamp(name, h)
			if err != nil {
				t.Fatal(err)
			}
			if w.Name != name || w.Mix == "" {
				t.Errorf("workload metadata: Name=%q Mix=%q", w.Name, w.Mix)
			}
			rt := stm.New(h, stm.Config{})
			rng := uint64(1)
			body := func(tx stmapi.Txn) error {
				w.Body(tx, &rng)
				return nil
			}
			api := rt.API()
			const n = 500
			for i := 0; i < n; i++ {
				if err := api.Atomic(body); err != nil {
					t.Fatal(err)
				}
			}
			if got := rt.Stats.Commits.Load(); got != n {
				t.Errorf("commits = %d, want %d", got, n)
			}
		})
	}
}
