// Package workloads contains the TJ benchmark programs used to reproduce
// the paper's evaluation (Section 7): a seven-kernel suite standing in for
// SPEC JVM98 (non-transactional programs for Figures 15–17) and the three
// multi-threaded transactional benchmarks — Tsp, OO7, and SpecJBB analogs —
// for Figures 18–20. Each workload mirrors the memory-access *shape* of its
// original: compress and mpegaudio are array-heavy (mpegaudio on static
// arrays, which defeats dynamic escape analysis exactly as in the paper);
// mtrt and javac allocate heavily; db and jess chase heap pointers; jack
// mixes array scanning with small allocations.
package workloads

// srcCompress is the _201_compress analog: run-length compression with a
// hash dictionary over a generated buffer. args: (bufLen, iters).
const srcCompress = `
class Compress {
  static func gen(n: int): int[] {
    var data = new int[n];
    var x = 12345;
    for (var i = 0; i < n; i++) {
      x = (x * 1103515245 + 12345) % 2147483648;
      if (x < 0) { x = -x; }
      data[i] = x % 97 % 16;
    }
    return data;
  }
  static func compress(data: int[], dict: int[], out: int[]): int {
    var oi = 0;
    var prev = -1;
    var runlen = 0;
    for (var i = 0; i < len(data); i++) {
      var c = data[i];
      if (c == prev) {
        runlen++;
      } else {
        if (runlen > 0) { out[oi] = prev * 512 + runlen; oi++; }
        prev = c;
        runlen = 1;
      }
      var h = (c * 31 + runlen * 7) % 4096;
      dict[h] = dict[h] + 1;
    }
    out[oi] = prev * 512 + runlen;
    oi++;
    var sum = 0;
    for (var i = 0; i < oi; i++) { sum = (sum + out[i] * (i + 1)) % 1000003; }
    for (var i = 0; i < 4096; i = i + 256) { sum = (sum + dict[i]) % 1000003; }
    return sum;
  }
  static func run(n: int, iters: int): int {
    var data = Compress.gen(n);
    var check = 0;
    for (var it = 0; it < iters; it++) {
      var dict = new int[4096];
      var out = new int[n + 16];
      check = (check + Compress.compress(data, dict, out)) % 1000003;
    }
    return check;
  }
}
class Main {
  static func main() { print(Compress.run(arg(0), arg(1))); }
}
`

// srcDb is the _209_db analog: sorted record table with binary-search
// lookups and field updates. args: (records, ops).
const srcDb = `
class Record { var key: int; var val: int; var tag: int; }
class Db {
  static func run(n: int, ops: int): int {
    var recs = new Record[n];
    for (var i = 0; i < n; i++) {
      var r = new Record();
      r.key = i * 2;
      r.val = i * 7 % 101;
      recs[i] = r;
    }
    var check = 0;
    var x = 99;
    for (var op = 0; op < ops; op++) {
      x = (x * 1103515245 + 12345) % 2147483648;
      if (x < 0) { x = -x; }
      var probe = x % (n * 2);
      var lo = 0;
      var hi = n - 1;
      var found = -1;
      while (lo <= hi) {
        var mid = (lo + hi) / 2;
        var k = recs[mid].key;
        if (k == probe) { found = mid; break; }
        if (k < probe) { lo = mid + 1; } else { hi = mid - 1; }
      }
      if (found >= 0) {
        var r = recs[found];
        r.val = r.val + 1;
        r.tag = r.tag + op % 7;
        check = (check + r.val) % 1000003;
      } else {
        check = (check + lo) % 1000003;
      }
    }
    return check;
  }
}
class Main {
  static func main() { print(Db.run(arg(0), arg(1))); }
}
`

// srcMpegaudio is the _222_mpegaudio analog: subband filtering over STATIC
// coefficient and window tables. Static data is public from the start, so
// dynamic escape analysis cannot remove these barriers — the paper's
// explanation for mpegaudio's residual overhead. args: (iters).
const srcMpegaudio = `
class Filter {
  static var coef: int[];
  static var window: int[];
  static var out: int[];
  init {
    coef = new int[512];
    window = new int[512];
    out = new int[32];
    for (var i = 0; i < 512; i++) {
      coef[i] = (i * 37 + 11) % 256 - 128;
      window[i] = (i * 17 + 5) % 128;
    }
  }
  static func subband(shift: int): int {
    for (var s = 0; s < 32; s++) {
      var acc = 0;
      for (var k = 0; k < 16; k++) {
        var idx = (s * 16 + k + shift) % 512;
        acc = acc + coef[idx] * window[(idx * 3 + 1) % 512];
      }
      out[s] = acc % 65536;
    }
    var sum = 0;
    for (var s = 0; s < 32; s++) { sum = (sum + out[s] * (s + 1)) % 1000003; }
    if (sum < 0) { sum = sum + 1000003; }
    return sum;
  }
  static func run(iters: int): int {
    var check = 0;
    for (var i = 0; i < iters; i++) {
      check = (check + Filter.subband(i % 512)) % 1000003;
    }
    return check;
  }
}
class Main {
  static func main() { print(Filter.run(arg(0))); }
}
`

// srcMtrt is the _227_mtrt analog: ray/sphere intersection tests with
// per-ray temporary vector objects (thread-local allocation that dynamic
// escape analysis keeps private). args: (spheres, rays).
const srcMtrt = `
class Vec { var x: int; var y: int; var z: int; }
class Sphere { var cx: int; var cy: int; var cz: int; var r2: int; }
class Rt {
  static func run(nspheres: int, nrays: int): int {
    var spheres = new Sphere[nspheres];
    for (var i = 0; i < nspheres; i++) {
      var s = new Sphere();
      s.cx = i * 13 % 200 - 100;
      s.cy = i * 29 % 200 - 100;
      s.cz = i * 7 % 150 + 20;
      s.r2 = (i % 10 + 2) * (i % 10 + 2) * 25;
      spheres[i] = s;
    }
    var hits = 0;
    var x = 7;
    for (var ray = 0; ray < nrays; ray++) {
      var o = new Vec();
      var d = new Vec();
      x = (x * 1103515245 + 12345) % 2147483648;
      if (x < 0) { x = -x; }
      o.x = x % 41 - 20;
      o.y = x % 37 - 18;
      o.z = 0;
      d.x = x % 11 - 5;
      d.y = x % 13 - 6;
      d.z = x % 9 + 1;
      for (var i = 0; i < nspheres; i++) {
        var s = spheres[i];
        var ox = s.cx - o.x;
        var oy = s.cy - o.y;
        var oz = s.cz - o.z;
        var tproj = ox * d.x + oy * d.y + oz * d.z;
        if (tproj > 0) {
          var dd = d.x * d.x + d.y * d.y + d.z * d.z;
          if (dd > 0) {
            var dist2 = ox * ox + oy * oy + oz * oz - (tproj * tproj) / dd;
            if (dist2 < s.r2) { hits++; }
          }
        }
      }
    }
    return hits;
  }
}
class Main {
  static func main() { print(Rt.run(arg(0), arg(1))); }
}
`

// srcJess is the _202_jess analog: joining facts in working memory (linked
// lists of small objects). args: (facts, iters).
const srcJess = `
class Fact { var a: int; var b: int; var next: Fact; }
class Jess {
  static func run(nfacts: int, iters: int): int {
    var head: Fact = null;
    for (var i = 0; i < nfacts; i++) {
      var f = new Fact();
      f.a = i % 23;
      f.b = i * 3 % 23;
      f.next = head;
      head = f;
    }
    var fired = 0;
    for (var it = 0; it < iters; it++) {
      var f = head;
      while (f != null) {
        var g = head;
        while (g != null) {
          if (f.a == g.b && (f.b + it) % 3 == 0) { fired++; }
          g = g.next;
        }
        f = f.next;
      }
    }
    return fired;
  }
}
class Main {
  static func main() { print(Jess.run(arg(0), arg(1))); }
}
`

// srcJack is the _228_jack analog: tokenizing a synthetic input stream into
// freshly allocated token objects. args: (inputLen, iters).
const srcJack = `
class Tok { var kind: int; var val: int; }
class Jack {
  static func run(n: int, iters: int): int {
    var input = new int[n];
    var x = 3;
    for (var i = 0; i < n; i++) {
      x = (x * 1103515245 + 12345) % 2147483648;
      if (x < 0) { x = -x; }
      input[i] = x % 30;
    }
    var check = 0;
    for (var it = 0; it < iters; it++) {
      var i = 0;
      while (i < n) {
        var c = input[i];
        var t = new Tok();
        if (c < 10) {
          var v = 0;
          while (i < n && input[i] < 10) {
            v = (v * 10 + input[i]) % 100000;
            i++;
          }
          t.kind = 1;
          t.val = v;
        } else {
          t.kind = 2;
          t.val = c;
          i++;
        }
        check = (check + t.kind * 31 + t.val) % 1000003;
      }
    }
    return check;
  }
}
class Main {
  static func main() { print(Jack.run(arg(0), arg(1))); }
}
`

// srcJavac is the _213_javac analog: building and constant-folding binary
// expression trees. args: (depth, iters).
const srcJavac = `
class Node { var op: int; var val: int; var l: Node; var r: Node; }
class Javac {
  static func build(depth: int, seed: int): Node {
    var e = new Node();
    if (depth == 0) {
      e.op = 0;
      e.val = seed % 100;
      return e;
    }
    e.op = seed % 3 + 1;
    e.l = Javac.build(depth - 1, (seed * 31 + 7) % 1000000007);
    e.r = Javac.build(depth - 1, (seed * 17 + 3) % 1000000007);
    return e;
  }
  static func fold(e: Node): int {
    if (e.op == 0) { return e.val; }
    var a = Javac.fold(e.l);
    var b = Javac.fold(e.r);
    if (e.op == 1) { return (a + b) % 1000003; }
    if (e.op == 2) { return (a * b + 1) % 1000003; }
    return (a - b + 1000003) % 1000003;
  }
  static func run(depth: int, iters: int): int {
    var check = 0;
    for (var i = 0; i < iters; i++) {
      var e = Javac.build(depth, i + 1);
      check = (check + Javac.fold(e)) % 1000003;
    }
    return check;
  }
}
class Main {
  static func main() { print(Javac.run(arg(0), arg(1))); }
}
`
