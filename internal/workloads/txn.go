package workloads

// srcTsp is the Tsp benchmark (Figure 18): branch-and-bound traveling
// salesman. Threads claim starting cities from a shared work counter and
// share the best-answer-so-far through shared memory. The bound check in
// the inner search reads the shared best *outside* any transaction — a
// benign race the paper's strong atomicity must support — while updates go
// through atomic blocks (or a lock in the Synch configuration).
// args: (threads, cities, useTxn).
const srcTsp = `
class Best { var length: int; }
class Shared {
  static var dist: int[];
  static var n: int;
  static var best: Best;
  static var nextStart: int;
  static var lockObj: Best;
  static var useTxn: int;
}
class Worker {
  var visited: bool[];
  func claimStart(): int {
    var s = 0;
    if (Shared.useTxn == 1) {
      atomic {
        s = Shared.nextStart;
        if (s < Shared.n - 1) { Shared.nextStart = s + 1; }
      }
    } else {
      synchronized (Shared.lockObj) {
        s = Shared.nextStart;
        if (s < Shared.n - 1) { Shared.nextStart = s + 1; }
      }
    }
    if (s >= Shared.n - 1) { return -1; }
    return s + 1;
  }
  func offerTour(total: int) {
    if (Shared.useTxn == 1) {
      atomic {
        if (total < Shared.best.length) { Shared.best.length = total; }
      }
    } else {
      synchronized (Shared.lockObj) {
        if (total < Shared.best.length) { Shared.best.length = total; }
      }
    }
  }
  func dfs(city: int, count: int, sofar: int) {
    if (sofar >= Shared.best.length) { return; }
    if (count == Shared.n) {
      offerTour(sofar + Shared.dist[city * Shared.n]);
      return;
    }
    for (var next = 1; next < Shared.n; next++) {
      if (!visited[next]) {
        visited[next] = true;
        dfs(next, count + 1, sofar + Shared.dist[city * Shared.n + next]);
        visited[next] = false;
      }
    }
  }
  func search() {
    visited = new bool[Shared.n];
    var more = true;
    while (more) {
      var second = claimStart();
      if (second < 0) {
        more = false;
      } else {
        for (var i = 0; i < Shared.n; i++) { visited[i] = false; }
        visited[0] = true;
        visited[second] = true;
        dfs(second, 2, Shared.dist[second]);
      }
    }
  }
}
class Main {
  static func main() {
    var threads = arg(0);
    var n = arg(1);
    Shared.useTxn = arg(2);
    Shared.n = n;
    Shared.lockObj = new Best();
    Shared.best = new Best();
    Shared.best.length = 1000000000;
    Shared.dist = new int[n * n];
    var x = 5;
    for (var i = 0; i < n; i++) {
      for (var j = 0; j < n; j++) {
        if (i != j) {
          x = (x * 1103515245 + 12345) % 2147483648;
          var d = x % 90;
          if (d < 0) { d = -d; }
          Shared.dist[i * n + j] = d + 10;
        }
      }
    }
    var ts = new thread[threads - 1];
    for (var t = 0; t < threads - 1; t++) {
      var w = new Worker();
      ts[t] = spawn w.search();
    }
    var w0 = new Worker();
    w0.search();
    for (var t = 0; t < threads - 1; t++) { join(ts[t]); }
    print(Shared.best.length);
  }
}
`

// srcOO7 is the OO7 benchmark (Figure 19), with the benchmark's schema
// shape: an assembly hierarchy whose base assemblies hold composite parts;
// each composite part has a document and a small graph of atomic parts
// with connections. Traversals run at root granularity — 80% T1-style
// read-only traversals, 20% T2-style traversals that update every atomic
// part — matching the paper's root-locking configuration. The final
// checksum is deterministic because each thread's operation mix is fixed
// by its seed. args: (threads, opsPerThread, useTxn, depth, fanout).
const srcOO7 = `
class AtomicPart {
  var x: int;
  var buildDate: int;
  var to: AtomicPart[];   // connections
}
class Document { var title: int; var length: int; }
class CompositePart {
  var doc: Document;
  var parts: AtomicPart[];
  var rootPart: AtomicPart;
}
class Assembly {
  var id: int;
  var subs: Assembly[];          // complex assembly -> sub-assemblies
  var components: CompositePart[]; // base assembly -> composite parts
}
class OO7 {
  static var root: Assembly;
  static var lockObj: Assembly;
  static var useTxn: int;
  static var fanout: int;
  static var nextId: int;
  static func buildComposite(nparts: int): CompositePart {
    var c = new CompositePart();
    c.doc = new Document();
    c.doc.title = nextId;
    c.doc.length = nparts * 16;
    c.parts = new AtomicPart[nparts];
    for (var i = 0; i < nparts; i++) {
      var a = new AtomicPart();
      a.x = i + 1;
      a.buildDate = 20070611 + i;
      c.parts[i] = a;
    }
    for (var i = 0; i < nparts; i++) {
      var a = c.parts[i];
      a.to = new AtomicPart[2];
      a.to[0] = c.parts[(i + 1) % nparts];
      a.to[1] = c.parts[(i * 3 + 1) % nparts];
    }
    c.rootPart = c.parts[0];
    return c;
  }
  static func build(depth: int): Assembly {
    var asm = new Assembly();
    nextId = nextId + 1;
    asm.id = nextId;
    if (depth > 0) {
      asm.subs = new Assembly[fanout];
      for (var i = 0; i < fanout; i++) { asm.subs[i] = OO7.build(depth - 1); }
    } else {
      asm.components = new CompositePart[2];
      for (var i = 0; i < 2; i++) { asm.components[i] = OO7.buildComposite(5); }
    }
    return asm;
  }
  static func sumComposite(c: CompositePart): int {
    var s = c.doc.title + c.doc.length;
    for (var i = 0; i < len(c.parts); i++) {
      var a = c.parts[i];
      s = s + a.x + a.to[0].x;
    }
    return s % 1000003;
  }
  static func sum(asm: Assembly): int {
    var s = asm.id;
    if (asm.subs != null) {
      for (var i = 0; i < len(asm.subs); i++) { s = s + OO7.sum(asm.subs[i]); }
    }
    if (asm.components != null) {
      for (var i = 0; i < len(asm.components); i++) {
        s = s + OO7.sumComposite(asm.components[i]);
      }
    }
    return s % 1000003;
  }
  static func bumpComposite(c: CompositePart, d: int) {
    for (var i = 0; i < len(c.parts); i++) {
      var a = c.parts[i];
      a.x = a.x + d;
      a.buildDate = a.buildDate + 1;
    }
  }
  static func bump(asm: Assembly, d: int) {
    if (asm.subs != null) {
      for (var i = 0; i < len(asm.subs); i++) { OO7.bump(asm.subs[i], d); }
    }
    if (asm.components != null) {
      for (var i = 0; i < len(asm.components); i++) {
        OO7.bumpComposite(asm.components[i], d);
      }
    }
  }
}
class Client {
  var ops: int;
  func lookup(): int {
    var s = 0;
    if (OO7.useTxn == 1) {
      atomic { s = OO7.sum(OO7.root); }
    } else {
      synchronized (OO7.lockObj) { s = OO7.sum(OO7.root); }
    }
    return s;
  }
  func update() {
    if (OO7.useTxn == 1) {
      atomic { OO7.bump(OO7.root, 1); }
    } else {
      synchronized (OO7.lockObj) { OO7.bump(OO7.root, 1); }
    }
  }
  func run() {
    var acc = 0;
    for (var i = 0; i < ops; i++) {
      if (rand(100) < 80) {
        acc = (acc + lookup()) % 1000003;
      } else {
        update();
      }
    }
  }
}
class Main {
  static func main() {
    var threads = arg(0);
    var ops = arg(1);
    OO7.useTxn = arg(2);
    var depth = arg(3);
    OO7.fanout = arg(4);
    OO7.lockObj = new Assembly();
    OO7.root = OO7.build(depth);
    var ts = new thread[threads - 1];
    for (var t = 0; t < threads - 1; t++) {
      var c = new Client();
      c.ops = ops;
      ts[t] = spawn c.run();
    }
    var c0 = new Client();
    c0.ops = ops;
    c0.run();
    for (var t = 0; t < threads - 1; t++) { join(ts[t]); }
    print(OO7.sum(OO7.root));
  }
}
`

// srcJBB is the SpecJBB analog (Figure 20): a wholesale company with one
// warehouse per terminal thread. New-order and payment transactions touch
// warehouse-local state; a small fraction touch company-wide totals.
// Between transactions each terminal does non-transactional "think" work
// with fresh objects. The final state checksum is deterministic.
// args: (threads, opsPerTerminal, useTxn, itemsPerWarehouse).
const srcJBB = `
class Item { var price: int; var stock: int; var sold: int; }
class District { var nextOrder: int; var ytd: int; }
class Warehouse {
  var items: Item[];
  var dists: District[];
  var ytd: int;
  var lockObj: Item;
}
class Company {
  static var whs: Warehouse[];
  static var totalOrders: int;
  static var lockObj: Item;
  static var useTxn: int;
  static var nitems: int;
}
class Terminal {
  var wh: Warehouse;
  var ops: int;
  var check: int;
  func doNewOrder(d: District, picks: int[]): int {
    var w = wh;
    var norder = d.nextOrder;
    d.nextOrder = norder + 1;
    for (var i = 0; i < len(picks); i++) {
      var it = w.items[picks[i]];
      it.stock = it.stock - 1;
      it.sold = it.sold + 1;
      if (it.stock < 10) { it.stock = it.stock + 91; }
      d.ytd = (d.ytd + it.price) % 1000003;
    }
    w.ytd = w.ytd + 1;
    return norder;
  }
  func newOrder() {
    var d = wh.dists[rand(len(wh.dists))];
    var picks = new int[5 + rand(6)];
    for (var i = 0; i < len(picks); i++) { picks[i] = rand(Company.nitems); }
    var norder = 0;
    if (Company.useTxn == 1) {
      atomic { norder = doNewOrder(d, picks); }
    } else {
      synchronized (wh.lockObj) { norder = doNewOrder(d, picks); }
    }
    check = (check + norder) % 1000003;
  }
  func doPayment(d: District, amt: int) {
    d.ytd = (d.ytd + amt) % 1000003;
    wh.ytd = wh.ytd + 1;
  }
  func payment() {
    var d = wh.dists[rand(len(wh.dists))];
    var amt = 1 + rand(500);
    if (Company.useTxn == 1) {
      atomic { doPayment(d, amt); }
    } else {
      synchronized (wh.lockObj) { doPayment(d, amt); }
    }
  }
  func companyUpdate() {
    if (Company.useTxn == 1) {
      atomic { Company.totalOrders = Company.totalOrders + 1; }
    } else {
      synchronized (Company.lockObj) { Company.totalOrders = Company.totalOrders + 1; }
    }
  }
  func think(): int {
    var acc = 0;
    for (var i = 0; i < 20; i++) {
      var it = new Item();
      it.price = i * 3 + 1;
      it.stock = i;
      acc = (acc + it.price * it.stock) % 1000003;
    }
    return acc;
  }
  func run() {
    for (var i = 0; i < ops; i++) {
      var k = rand(100);
      if (k < 45) {
        newOrder();
      } else {
        if (k < 80) { payment(); } else { check = (check + think()) % 1000003; }
      }
      if (k == 7) { companyUpdate(); }
    }
  }
}
class Main {
  static func main() {
    var threads = arg(0);
    var ops = arg(1);
    Company.useTxn = arg(2);
    Company.nitems = arg(3);
    Company.lockObj = new Item();
    Company.whs = new Warehouse[threads];
    for (var t = 0; t < threads; t++) {
      var w = new Warehouse();
      w.lockObj = new Item();
      w.items = new Item[Company.nitems];
      for (var i = 0; i < Company.nitems; i++) {
        var it = new Item();
        it.price = i % 97 + 1;
        it.stock = 100;
        w.items[i] = it;
      }
      w.dists = new District[10];
      for (var i = 0; i < 10; i++) { w.dists[i] = new District(); }
      Company.whs[t] = w;
    }
    var terms = new Terminal[threads];
    for (var t = 0; t < threads; t++) {
      var tm = new Terminal();
      tm.wh = Company.whs[t];
      tm.ops = ops;
      terms[t] = tm;
    }
    var ts = new thread[threads - 1];
    for (var t = 1; t < threads; t++) { ts[t - 1] = spawn terms[t].run(); }
    terms[0].run();
    for (var t = 0; t < threads - 1; t++) { join(ts[t]); }
    var total = Company.totalOrders;
    for (var t = 0; t < threads; t++) {
      var w = Company.whs[t];
      total = (total + w.ytd + terms[t].check) % 1000003;
      for (var i = 0; i < 10; i++) {
        total = (total + w.dists[i].ytd + w.dists[i].nextOrder) % 1000003;
      }
      for (var i = 0; i < Company.nitems; i = i + 17) {
        total = (total + w.items[i].stock * 3 + w.items[i].sold) % 1000003;
      }
    }
    print(total);
  }
}
`
