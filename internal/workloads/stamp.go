package workloads

// STAMP-shape transactional workloads, driven through the stmapi Go surface
// rather than TJ programs. The three mixes echo the STAMP suite's canonical
// contention profiles:
//
//   vacation — travel-reservation service: each transaction probes a handful
//     of entries across three resource tables (cars, flights, rooms), picks
//     one per table, and books it against a customer record. ~10 reads and
//     3-4 writes per transaction over mid-sized tables: moderate contention.
//
//   kmeans — clustering inner loop: each transaction reads one of K hot
//     cluster-centroid objects and accumulates a point into it. K is tiny
//     (8), so nearly every transaction collides on the same few objects:
//     high contention, short transactions.
//
//   genome — segment matching: each transaction walks ~16 read-only probes
//     through a large hash-bucket table and rarely (1 in 16) inserts a
//     segment. Long read-mostly transactions over a big table: low
//     contention, validation-dominated.
//
// Bodies are allocation-free on the hot path: all objects are pre-built at
// construction, the PRNG state threads through a *uint64, and the body
// closure is built once per Stamp. This keeps the zero-alloc commit gates
// honest when the bench harness drives these mixes.

import (
	"fmt"

	"repro/internal/objmodel"
	"repro/internal/stmapi"
)

// Stamp is one STAMP-shape workload bound to a heap: a reusable transaction
// body over pre-allocated shared objects.
type Stamp struct {
	Name string // vacation, kmeans, genome
	Mix  string // human-readable access-pattern summary

	body func(tx stmapi.Txn, r *uint64)
}

// Body runs one transaction's accesses against tx, advancing the caller's
// PRNG state r. It is safe for concurrent use with distinct r.
func (s *Stamp) Body(tx stmapi.Txn, r *uint64) { s.body(tx, r) }

// StampNames lists the available workloads in canonical order.
func StampNames() []string { return []string{"vacation", "kmeans", "genome"} }

// stampMix advances a SplitMix64 state and returns the next value (same
// generator the bench harness uses, kept local so workloads stay
// self-contained).
func stampMix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// stampObjs allocates n objects of a fresh 4-field class named name.
func stampObjs(h *objmodel.Heap, name string, n int) []*objmodel.Object {
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name: name,
		Fields: []objmodel.Field{
			{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
		},
	})
	objs := make([]*objmodel.Object, n)
	for i := range objs {
		objs[i] = h.New(cls)
	}
	return objs
}

// NewStamp builds the named workload's shared structures on h and returns
// the bound workload. Unknown names list the valid ones.
func NewStamp(name string, h *objmodel.Heap) (*Stamp, error) {
	switch name {
	case "vacation":
		return newVacation(h), nil
	case "kmeans":
		return newKmeans(h), nil
	case "genome":
		return newGenome(h), nil
	default:
		return nil, fmt.Errorf("workloads: unknown stamp workload %q (have %v)", name, StampNames())
	}
}

// newVacation: three resource tables of 256 entries plus 4096 customer
// records. Each transaction probes 3 candidate entries per table (reads),
// books the chosen entry in each (read-modify-write of the availability
// slot), and stamps the customer record.
func newVacation(h *objmodel.Heap) *Stamp {
	const (
		tableSize = 256
		customers = 4096
		probes    = 3
	)
	tables := [3][]*objmodel.Object{
		stampObjs(h, "VacCar", tableSize),
		stampObjs(h, "VacFlight", tableSize),
		stampObjs(h, "VacRoom", tableSize),
	}
	cust := stampObjs(h, "VacCustomer", customers)
	return &Stamp{
		Name: "vacation",
		Mix:  "3x3 probe reads + 3 bookings + customer stamp (moderate contention)",
		body: func(tx stmapi.Txn, r *uint64) {
			z := stampMix(r)
			c := cust[z%customers]
			total := uint64(0)
			for t := range tables {
				tab := tables[t]
				// Probe a few candidates, book the one with the lowest
				// observed price slot — the reads are real dependencies of
				// the write that follows.
				best := tab[stampMix(r)%tableSize]
				bestPrice := tx.Read(best, 0)
				for p := 1; p < probes; p++ {
					o := tab[stampMix(r)%tableSize]
					if price := tx.Read(o, 0); price < bestPrice {
						best, bestPrice = o, price
					}
				}
				booked := tx.Read(best, 1)
				tx.Write(best, 1, booked+1)
				total += bestPrice
			}
			tx.Write(c, 0, tx.Read(c, 0)+1) // trips taken
			tx.Write(c, 1, total)           // last itinerary cost
		},
	}
}

// newKmeans: K hot centroid objects. Each transaction assigns one point —
// read the chosen centroid's accumulators, add the point, bump its count.
// Nearly every transaction touches the same 8 objects.
func newKmeans(h *objmodel.Heap) *Stamp {
	const k = 8
	centroids := stampObjs(h, "KmCentroid", k)
	return &Stamp{
		Name: "kmeans",
		Mix:  "accumulate into one of 8 hot centroids (high contention)",
		body: func(tx stmapi.Txn, r *uint64) {
			z := stampMix(r)
			c := centroids[z%k]
			px, py := z>>8&0xffff, z>>24&0xffff
			tx.Write(c, 0, tx.Read(c, 0)+px) // sum x
			tx.Write(c, 1, tx.Read(c, 1)+py) // sum y
			tx.Write(c, 2, tx.Read(c, 2)+1)  // member count
		},
	}
}

// newGenome: a large bucket table. Each transaction probes a 16-bucket
// pseudo hash chain read-only; one transaction in 16 also inserts a segment
// into its final bucket.
func newGenome(h *objmodel.Heap) *Stamp {
	const (
		buckets = 16384
		probes  = 16
	)
	tab := stampObjs(h, "GenBucket", buckets)
	return &Stamp{
		Name: "genome",
		Mix:  "16 bucket probes, 1/16 insert (low contention, read-mostly)",
		body: func(tx stmapi.Txn, r *uint64) {
			z := stampMix(r)
			idx := z % buckets
			var last *objmodel.Object
			acc := uint64(0)
			for p := 0; p < probes; p++ {
				last = tab[idx]
				acc += tx.Read(last, int(idx)&3)
				// Chain to the next bucket as a function of what we read,
				// like following hash-chain links.
				idx = (idx*1103515245 + acc + 12345) % buckets
			}
			if z>>60&0xf == 0 {
				tx.Write(last, 0, acc|1) // insert a segment marker
			}
		},
	}
}
