package containers

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func systems(t *testing.T) map[string]*core.System {
	t.Helper()
	return map[string]*core.System{
		"weak":       core.MustNewSystem(core.Config{}),
		"strong":     core.MustNewSystem(core.Config{Strong: true}),
		"strong-dea": core.MustNewSystem(core.Config{Strong: true, DEA: true}),
	}
}

func TestMapBasics(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			m, err := NewMap(sys, 8)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok, _ := m.Get(1); ok {
				t.Error("empty map claims membership")
			}
			for k := int64(0); k < 50; k++ {
				if err := m.Put(k, k*10); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Put(7, 777); err != nil { // update
				t.Fatal(err)
			}
			for k := int64(0); k < 50; k++ {
				v, ok, err := m.Get(k)
				if err != nil || !ok {
					t.Fatalf("get %d: ok=%v err=%v", k, ok, err)
				}
				want := k * 10
				if k == 7 {
					want = 777
				}
				if v != want {
					t.Errorf("get %d = %d, want %d", k, v, want)
				}
			}
			if n, _ := m.Len(); n != 50 {
				t.Errorf("len = %d, want 50", n)
			}
			if ok, _ := m.Delete(7); !ok {
				t.Error("delete existing failed")
			}
			if ok, _ := m.Delete(7); ok {
				t.Error("double delete succeeded")
			}
			if _, ok, _ := m.Get(7); ok {
				t.Error("deleted key still present")
			}
			if n, _ := m.Len(); n != 49 {
				t.Errorf("len = %d, want 49", n)
			}
		})
	}
}

func TestMapConcurrent(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true})
	m, err := NewMap(sys, 16)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		perW    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := int64(w*perW + i)
				if err := m.Put(k, k+1); err != nil {
					t.Error(err)
					return
				}
				if v, ok, _ := m.Get(k); !ok || v != k+1 {
					t.Errorf("readback %d: %d/%v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := m.Len(); n != writers*perW {
		t.Errorf("len = %d, want %d", n, writers*perW)
	}
}

// TestMapComposedTransfer moves an entry between two maps in ONE atomic
// step using the Tx variants — transactional composition, the STM selling
// point the paper's intro leans on.
func TestMapComposedTransfer(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true})
	a, _ := NewMap(sys, 8)
	b, _ := NewMap(sys, 8)
	if err := a.Put(1, 42); err != nil {
		t.Fatal(err)
	}
	err := sys.Atomic(func(tx core.Tx) error {
		v, ok := a.GetTx(tx, 1)
		if !ok {
			t.Error("missing key inside transaction")
		}
		a.DeleteTx(tx, 1)
		b.PutTx(tx, 1, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := a.Get(1); ok {
		t.Error("key still in source map")
	}
	if v, ok, _ := b.Get(1); !ok || v != 42 {
		t.Errorf("destination has %d/%v", v, ok)
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true})
	q, err := NewQueue(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var got []int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < n; i++ {
			v, err := q.Take()
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, v)
		}
	}()
	for i := 0; i < n; i++ { // producer (blocks when the 4-slot buffer fills)
		if err := q.Put(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("position %d = %d (FIFO order violated)", i, v)
		}
	}
}

func TestQueueTryTake(t *testing.T) {
	sys := core.MustNewSystem(core.Config{})
	q, _ := NewQueue(sys, 2)
	if _, ok, _ := q.TryTake(); ok {
		t.Error("TryTake on empty queue returned a value")
	}
	_ = q.Put(9)
	v, ok, _ := q.TryTake()
	if !ok || v != 9 {
		t.Errorf("TryTake = %d/%v", v, ok)
	}
}

func TestQueueManyProducersConsumers(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true})
	q, _ := NewQueue(sys, 8)
	const (
		producers = 3
		perP      = 100
	)
	var sum int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < producers*perP/2; i++ {
				v, err := q.Take()
				if err != nil {
					t.Error(err)
					return
				}
				local += v
			}
			mu.Lock()
			sum += local
			mu.Unlock()
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				if err := q.Put(int64(p*perP + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	want := int64(0)
	for v := 0; v < producers*perP; v++ {
		want += int64(v)
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestSetSortedAndDedup(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true, DEA: true})
	s, err := NewSet(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{5, 1, 9, 5, 3, 1, 7} {
		if _, err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 3, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("snapshot = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", keys, want)
		}
	}
	if found, _ := s.Contains(7); !found {
		t.Error("missing member")
	}
	if found, _ := s.Contains(8); found {
		t.Error("phantom member")
	}
	if removed, _ := s.Remove(5); !removed {
		t.Error("remove failed")
	}
	if found, _ := s.Contains(5); found {
		t.Error("removed member still present")
	}
	if removed, _ := s.Remove(5); removed {
		t.Error("double remove succeeded")
	}
}

func TestSetConcurrentInserts(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true})
	s, _ := NewSet(sys)
	var added int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := int64(0)
			for k := int64(0); k < 100; k++ {
				ok, err := s.Insert(k) // every goroutine tries every key
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					n++
				}
			}
			mu.Lock()
			added += n
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if added != 100 {
		t.Errorf("total successful inserts = %d, want exactly 100", added)
	}
	keys, _ := s.Snapshot()
	if len(keys) != 100 {
		t.Errorf("set size = %d", len(keys))
	}
}

// TestMapAgainstModel drives the map with random operations and compares
// against Go's built-in map.
func TestMapAgainstModel(t *testing.T) {
	sys := core.MustNewSystem(core.Config{Strong: true})
	m, err := NewMap(sys, 4) // few buckets: long chains
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]int64{}
	f := func(ops []struct {
		Op  uint8
		Key int8
		Val int16
	}) bool {
		for _, o := range ops {
			k := int64(o.Key % 16)
			switch o.Op % 3 {
			case 0:
				if err := m.Put(k, int64(o.Val)); err != nil {
					t.Fatal(err)
				}
				model[k] = int64(o.Val)
			case 1:
				ok, err := m.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				if _, want := model[k]; ok != want {
					t.Errorf("delete %d = %v, model %v", k, ok, want)
				}
				delete(model, k)
			case 2:
				v, ok, err := m.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				wantV, wantOK := model[k]
				if ok != wantOK || (ok && v != wantV) {
					t.Errorf("get %d = %d/%v, model %d/%v", k, v, ok, wantV, wantOK)
				}
			}
		}
		n, _ := m.Len()
		return n == int64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
