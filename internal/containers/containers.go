// Package containers provides transactional data structures built on the
// strongly-atomic STM's public API (package core): a hash map, a bounded
// blocking queue, and a sorted-list set. Every operation is a transaction,
// each structure also exposes Tx variants so multiple operations compose
// into one atomic step, and — because the underlying system is strongly
// atomic — objects handed out of a structure can safely be used with
// plain non-transactional accesses afterwards (the privatization idiom of
// the paper's Figure 1).
package containers

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/objmodel"
)

// ensureClass registers a class once per system.
func ensureClass(sys *core.System, name string, fields ...core.Field) (*core.Class, error) {
	if c := sys.Heap.ClassByName(name); c != nil {
		return c, nil
	}
	return sys.DefineClass(name, fields...)
}

// ---- Map ----

// Map is a fixed-bucket transactional hash map from int64 to int64.
type Map struct {
	sys     *core.System
	buckets core.Obj // reference array: bucket heads
	size    core.Obj // {count}
	node    *core.Class
	n       int
}

// map node slots.
const (
	mnKey = iota
	mnVal
	mnNext
)

// NewMap creates a map with nBuckets chains.
func NewMap(sys *core.System, nBuckets int) (*Map, error) {
	if nBuckets <= 0 {
		return nil, fmt.Errorf("containers: bucket count must be positive")
	}
	node, err := ensureClass(sys, "containers.MapNode",
		core.Field{Name: "key"}, core.Field{Name: "val"},
		core.Field{Name: "next", IsRef: true})
	if err != nil {
		return nil, err
	}
	counter, err := ensureClass(sys, "containers.Counter", core.Field{Name: "count"})
	if err != nil {
		return nil, err
	}
	m := &Map{
		sys:     sys,
		buckets: sys.NewArray(nBuckets, true),
		size:    sys.New(counter),
		node:    node,
		n:       nBuckets,
	}
	// Containers are shared by construction; publish eagerly under DEA.
	sys.Heap.Publish(m.buckets)
	sys.Heap.Publish(m.size)
	return m, nil
}

func (m *Map) bucket(k int64) int {
	h := uint64(k) * 0x9e3779b97f4a7c15
	return int(h % uint64(m.n))
}

// PutTx inserts or updates k inside an enclosing transaction.
func (m *Map) PutTx(tx core.Tx, k, v int64) {
	b := m.bucket(k)
	for r := tx.ReadRef(m.buckets, b); r != 0; {
		nd := m.sys.Deref(r)
		if int64(tx.Read(nd, mnKey)) == k {
			tx.Write(nd, mnVal, uint64(v))
			return
		}
		r = tx.ReadRef(nd, mnNext)
	}
	nd := m.sys.New(m.node)
	nd.StoreSlot(mnKey, uint64(k)) // fresh private object: plain init is safe
	nd.StoreSlot(mnVal, uint64(v))
	//stmvet:ignore privatization -- fresh private node; the tx.WriteRef below publishes it (Figure 11 walk)
	nd.StoreSlot(mnNext, uint64(tx.ReadRef(m.buckets, b)))
	tx.WriteRef(m.buckets, b, nd.Ref())
	tx.Write(m.size, 0, tx.Read(m.size, 0)+1)
}

// Put inserts or updates k as its own transaction.
func (m *Map) Put(k, v int64) error {
	return m.sys.Atomic(func(tx core.Tx) error {
		m.PutTx(tx, k, v)
		return nil
	})
}

// GetTx looks k up inside an enclosing transaction.
func (m *Map) GetTx(tx core.Tx, k int64) (int64, bool) {
	for r := tx.ReadRef(m.buckets, m.bucket(k)); r != 0; {
		nd := m.sys.Deref(r)
		if int64(tx.Read(nd, mnKey)) == k {
			return int64(tx.Read(nd, mnVal)), true
		}
		r = tx.ReadRef(nd, mnNext)
	}
	return 0, false
}

// Get looks k up as its own transaction.
func (m *Map) Get(k int64) (v int64, ok bool, err error) {
	err = m.sys.Atomic(func(tx core.Tx) error {
		v, ok = m.GetTx(tx, k)
		return nil
	})
	return v, ok, err
}

// DeleteTx removes k inside an enclosing transaction, reporting presence.
func (m *Map) DeleteTx(tx core.Tx, k int64) bool {
	b := m.bucket(k)
	var prev core.Obj
	for r := tx.ReadRef(m.buckets, b); r != 0; {
		nd := m.sys.Deref(r)
		if int64(tx.Read(nd, mnKey)) == k {
			next := tx.ReadRef(nd, mnNext)
			if prev == nil {
				tx.WriteRef(m.buckets, b, next)
			} else {
				tx.WriteRef(prev, mnNext, next)
			}
			tx.Write(m.size, 0, tx.Read(m.size, 0)-1)
			return true
		}
		prev = nd
		r = tx.ReadRef(nd, mnNext)
	}
	return false
}

// Delete removes k as its own transaction.
func (m *Map) Delete(k int64) (ok bool, err error) {
	err = m.sys.Atomic(func(tx core.Tx) error {
		ok = m.DeleteTx(tx, k)
		return nil
	})
	return ok, err
}

// Len returns the entry count (transactionally consistent snapshot).
func (m *Map) Len() (n int64, err error) {
	err = m.sys.Atomic(func(tx core.Tx) error {
		n = int64(tx.Read(m.size, 0))
		return nil
	})
	return n, err
}

// ---- Queue ----

// Queue is a bounded transactional FIFO of int64 with blocking semantics:
// Put blocks while full and Take while empty, via the STM's user-initiated
// retry (the paper's retry operation).
type Queue struct {
	sys   *core.System
	buf   core.Obj // scalar ring buffer
	state core.Obj // {head, count}
	cap   int
}

// queue state slots.
const (
	qsHead = iota
	qsCount
)

// NewQueue creates a queue of the given capacity.
func NewQueue(sys *core.System, capacity int) (*Queue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("containers: capacity must be positive")
	}
	state, err := ensureClass(sys, "containers.QueueState",
		core.Field{Name: "head"}, core.Field{Name: "count"})
	if err != nil {
		return nil, err
	}
	q := &Queue{sys: sys, buf: sys.NewArray(capacity, false), state: sys.New(state), cap: capacity}
	sys.Heap.Publish(q.buf)
	sys.Heap.Publish(q.state)
	return q, nil
}

// Put appends v, blocking while the queue is full.
func (q *Queue) Put(v int64) error {
	return q.sys.Atomic(func(tx core.Tx) error {
		head := int(tx.Read(q.state, qsHead))
		count := int(tx.Read(q.state, qsCount))
		if count == q.cap {
			tx.Retry()
		}
		tx.Write(q.buf, (head+count)%q.cap, uint64(v))
		tx.Write(q.state, qsCount, uint64(count+1))
		return nil
	})
}

// Take removes and returns the oldest element, blocking while empty.
func (q *Queue) Take() (v int64, err error) {
	err = q.sys.Atomic(func(tx core.Tx) error {
		head := int(tx.Read(q.state, qsHead))
		count := int(tx.Read(q.state, qsCount))
		if count == 0 {
			tx.Retry()
		}
		v = int64(tx.Read(q.buf, head))
		tx.Write(q.state, qsHead, uint64((head+1)%q.cap))
		tx.Write(q.state, qsCount, uint64(count-1))
		return nil
	})
	return v, err
}

// TryTake is Take without blocking; ok is false when empty.
func (q *Queue) TryTake() (v int64, ok bool, err error) {
	err = q.sys.Atomic(func(tx core.Tx) error {
		head := int(tx.Read(q.state, qsHead))
		count := int(tx.Read(q.state, qsCount))
		if count == 0 {
			return nil
		}
		v = int64(tx.Read(q.buf, head))
		ok = true
		tx.Write(q.state, qsHead, uint64((head+1)%q.cap))
		tx.Write(q.state, qsCount, uint64(count-1))
		return nil
	})
	return v, ok, err
}

// ---- Set ----

// Set is a sorted singly-linked transactional set of int64.
type Set struct {
	sys  *core.System
	head core.Obj // sentinel node
	node *core.Class
}

// set node slots.
const (
	snKey = iota
	snNext
)

// NewSet creates an empty set.
func NewSet(sys *core.System) (*Set, error) {
	node, err := ensureClass(sys, "containers.SetNode",
		core.Field{Name: "key"}, core.Field{Name: "next", IsRef: true})
	if err != nil {
		return nil, err
	}
	s := &Set{sys: sys, head: sys.New(node), node: node}
	sys.Heap.Publish(s.head)
	return s, nil
}

// locate returns (pred, curr) where curr is the first node with key >= k.
func (s *Set) locate(tx core.Tx, k int64) (pred core.Obj, curr objmodel.Ref) {
	pred = s.head
	curr = tx.ReadRef(pred, snNext)
	for curr != 0 {
		nd := s.sys.Deref(curr)
		if int64(tx.Read(nd, snKey)) >= k {
			return pred, curr
		}
		pred = nd
		curr = tx.ReadRef(nd, snNext)
	}
	return pred, 0
}

// InsertTx adds k inside an enclosing transaction, reporting novelty.
func (s *Set) InsertTx(tx core.Tx, k int64) bool {
	pred, curr := s.locate(tx, k)
	if curr != 0 && int64(tx.Read(s.sys.Deref(curr), snKey)) == k {
		return false
	}
	nd := s.sys.New(s.node)
	nd.StoreSlot(snKey, uint64(k))
	//stmvet:ignore privatization -- fresh private node; the tx.WriteRef below publishes it (Figure 11 walk)
	nd.StoreSlot(snNext, uint64(curr))
	tx.WriteRef(pred, snNext, nd.Ref())
	return true
}

// Insert adds k as its own transaction.
func (s *Set) Insert(k int64) (added bool, err error) {
	err = s.sys.Atomic(func(tx core.Tx) error {
		added = s.InsertTx(tx, k)
		return nil
	})
	return added, err
}

// ContainsTx tests membership inside an enclosing transaction.
func (s *Set) ContainsTx(tx core.Tx, k int64) bool {
	_, curr := s.locate(tx, k)
	return curr != 0 && int64(tx.Read(s.sys.Deref(curr), snKey)) == k
}

// Contains tests membership as its own transaction.
func (s *Set) Contains(k int64) (found bool, err error) {
	err = s.sys.Atomic(func(tx core.Tx) error {
		found = s.ContainsTx(tx, k)
		return nil
	})
	return found, err
}

// RemoveTx deletes k inside an enclosing transaction, reporting presence.
func (s *Set) RemoveTx(tx core.Tx, k int64) bool {
	pred, curr := s.locate(tx, k)
	if curr == 0 {
		return false
	}
	nd := s.sys.Deref(curr)
	if int64(tx.Read(nd, snKey)) != k {
		return false
	}
	tx.WriteRef(pred, snNext, tx.ReadRef(nd, snNext))
	return true
}

// Remove deletes k as its own transaction.
func (s *Set) Remove(k int64) (removed bool, err error) {
	err = s.sys.Atomic(func(tx core.Tx) error {
		removed = s.RemoveTx(tx, k)
		return nil
	})
	return removed, err
}

// Snapshot returns the sorted contents in one consistent transaction.
func (s *Set) Snapshot() (keys []int64, err error) {
	err = s.sys.Atomic(func(tx core.Tx) error {
		keys = keys[:0]
		for curr := tx.ReadRef(s.head, snNext); curr != 0; {
			nd := s.sys.Deref(curr)
			keys = append(keys, int64(tx.Read(nd, snKey)))
			curr = tx.ReadRef(nd, snNext)
		}
		return nil
	})
	return keys, err
}
