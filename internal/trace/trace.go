// Package trace is the STM's observability substrate: a low-overhead event
// recorder both runtimes (internal/stm, internal/lazystm) emit into when a
// Tracer is installed on them.
//
// The paper's evaluation (Section 7) lives and dies on knowing *why*
// transactions abort and where contention concentrates; end-of-run
// aggregate counters cannot answer that. A Tracer records a bounded
// per-transaction event history — begin, read, write, lock-acquire,
// conflict, abort, retry, commit, each carrying the object handle and
// record version observed — into sharded ring buffers, and derives three
// live views from the stream:
//
//   - conflict attribution: a sharded hotspot table mapping object handle
//     to conflict and abort counts, so "which objects cause my aborts" is
//     one Top(n) call;
//   - latency histograms (log-bucketed, cache-line-padded) for commit
//     latency, abort-to-retry gaps, and quiescence waits;
//   - a JSON-serializable Snapshot combining counters, hotspots, and
//     histogram percentiles (consumed by internal/metrics and cmd/stmtop).
//
// Cost model: the runtimes guard every emission behind a single nil check
// on a descriptor-cached *Tracer, so the disabled path costs one
// predictable branch and stays allocation-free. The enabled path takes a
// timestamp and a short per-shard critical section; shards are selected by
// a goroutine-affine hint, so concurrent transactions rarely contend on
// the same ring.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Kind discriminates transaction lifecycle events.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	EvBegin       Kind = iota // transaction attempt started
	EvRead                    // open-for-read succeeded
	EvWrite                   // transactional store (in place or buffered)
	EvLockAcquire             // transaction record CAS-ed to Exclusive
	EvConflict                // conflict handler invoked against an owned record
	EvAbort                   // attempt rolled back (Obj = blamed object, if known)
	EvRetry                   // user-initiated retry
	EvCommit                  // attempt committed
	EvSelfAbort               // contention policy decided SelfAbort (Obj = contended object)
	EvDoom                    // contention policy doomed the owner (Obj = contended object, Ver = victim ID)
	EvSteal                   // reaper/waiter reclaimed a dead owner's records (Txn = reclaimer or 0, Ver = victim ID)
	EvEscalate                // atomic block escalated to irrevocable after K consecutive aborts (Slot = attempt)
	EvIrrevocable             // transaction became irrevocable (token acquired, read set locked)
	EvValidation              // commit-clock validation failed (Obj = stale object observed)
	EvExtend                  // read-time snapshot extension: version above snapshot, clock raised (Obj, Ver = version seen)
	numKinds
)

var kindNames = [numKinds]string{
	"begin", "read", "write", "lock-acquire", "conflict", "abort", "retry", "commit",
	"self-abort", "doom", "steal", "escalate", "irrevocable",
	"validation", "extend",
}

// String returns the kind's wire name (used as JSON keys in snapshots).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one step of one transaction's history.
type Event struct {
	Kind Kind   `json:"kind"`
	Txn  uint64 `json:"txn"`           // transaction owner ID
	Obj  uint64 `json:"obj,omitempty"` // heap handle; 0 = not object-specific
	Slot int    `json:"slot"`          // slot index; meaningful for reads/writes
	Ver  uint64 `json:"ver,omitempty"` // record version observed at the step
	Seq  uint64 `json:"seq"`           // global monotonic sequence stamp (total order across shards)
	Unix int64  `json:"unix_ns"`       // wall-clock timestamp, nanoseconds
}

// Sink receives every recorded event synchronously, in Seq order per
// recording goroutine (the global order is the Seq stamp, not call order).
// Implementations must be safe for concurrent use and should be cheap: the
// call happens on the transaction's own goroutine inside the traced path.
type Sink interface {
	Observe(Event)
}

// Config parameterizes a Tracer.
type Config struct {
	// ShardCapacity is the number of events each ring shard retains before
	// overwriting its oldest entries. Zero means DefaultShardCapacity.
	ShardCapacity int

	// Shards is the number of independent ring shards (rounded up to a
	// power of two). Zero means DefaultShards.
	Shards int
}

// Defaults for Config's zero fields.
const (
	DefaultShardCapacity = 4096
	DefaultShards        = 16
)

// ring is one event ring shard. A mutex (not a lock-free scheme) keeps the
// recorder trivially race-free for live readers; the goroutine-affine shard
// choice keeps the lock all but uncontended.
type ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64   // events ever recorded into this shard
	_     [24]byte // keep neighbouring shards' hot fields off one line
}

func (r *ring) record(ev Event) {
	r.mu.Lock()
	r.buf[r.total%uint64(len(r.buf))] = ev
	r.total++
	r.mu.Unlock()
}

// snapshot appends the shard's retained events, oldest first.
func (r *ring) snapshot(dst []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.total <= n {
		return append(dst, r.buf[:r.total]...)
	}
	start := r.total % n
	dst = append(dst, r.buf[start:]...)
	return append(dst, r.buf[:start]...)
}

// Tracer records transaction events and aggregates the derived views. All
// methods are safe for concurrent use. The zero Tracer is not usable; call
// New.
type Tracer struct {
	rings []ring
	mask  uint64

	// seq is the global monotonic sequence stamp. One shared atomic is a
	// deliberate trade: it serializes only *enabled* tracing (the disabled
	// path never reaches it) and buys a total order the sharded rings and
	// any attached Sink can be merged by.
	seq atomic.Uint64

	// sink, when set, observes every event synchronously after it is
	// stamped and ring-recorded. atomic.Pointer keeps the no-sink check to
	// one load on the traced path.
	sink atomic.Pointer[sinkBox]

	byKind [numKinds]stats.Counter

	hot       Hotspots
	commitLat Histogram
	abortGap  Histogram
	quiesce   Histogram
	irrevHold Histogram
}

// New creates a Tracer. Total retained history is Shards×ShardCapacity
// events; older events are overwritten, never blocking a recorder.
func New(cfg Config) *Tracer {
	if cfg.ShardCapacity <= 0 {
		cfg.ShardCapacity = DefaultShardCapacity
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	t := &Tracer{rings: make([]ring, pow), mask: uint64(pow - 1)}
	for i := range t.rings {
		t.rings[i].buf = make([]Event, cfg.ShardCapacity)
	}
	return t
}

// sinkBox wraps a Sink so a nil interface and "no sink" are both a nil
// pointer load.
type sinkBox struct{ s Sink }

// SetSink installs (or, with nil, removes) a synchronous event consumer.
// Safe to call while recording continues.
func (t *Tracer) SetSink(s Sink) {
	if s == nil {
		t.sink.Store(nil)
		return
	}
	t.sink.Store(&sinkBox{s: s})
}

// Sink returns the installed event consumer, or nil.
func (t *Tracer) Sink() Sink {
	if b := t.sink.Load(); b != nil {
		return b.s
	}
	return nil
}

// Record appends an event, stamped with the current time and a global
// sequence number, to the goroutine-affine ring shard, then feeds it to the
// sink if one is installed.
func (t *Tracer) Record(k Kind, txn, obj uint64, slot int, ver uint64) {
	ev := Event{
		Kind: k, Txn: txn, Obj: obj, Slot: slot, Ver: ver,
		Seq:  t.seq.Add(1),
		Unix: time.Now().UnixNano(),
	}
	t.byKind[k].Add(1)
	// Mix the transaction ID into the stack-page hint: goroutine stacks
	// allocated from the same span share a page hint, and a pure-hint choice
	// then funnels whole worker pools into one or two shards (observed: 15 of
	// 16 shards idle under an 8-worker sweep). Txn IDs are fresh per Atomic,
	// so the mix keeps shard affinity for a transaction's lifetime while
	// spreading colliding goroutines across the ring.
	t.rings[(uint64(stats.Hint())^(txn*0x9e3779b97f4a7c15))&t.mask].record(ev)
	if b := t.sink.Load(); b != nil {
		b.s.Observe(ev)
	}
}

// Hot returns the conflict-attribution table.
func (t *Tracer) Hot() *Hotspots { return &t.hot }

// CommitLatency is the histogram of begin-to-commit durations.
func (t *Tracer) CommitLatency() *Histogram { return &t.commitLat }

// AbortGap is the histogram of abort-to-next-begin (retry) gaps.
func (t *Tracer) AbortGap() *Histogram { return &t.abortGap }

// QuiesceWait is the histogram of post-commit quiescence wait durations.
func (t *Tracer) QuiesceWait() *Histogram { return &t.quiesce }

// ObserveCommit records one begin-to-commit latency.
func (t *Tracer) ObserveCommit(d time.Duration) { t.commitLat.Observe(d.Nanoseconds()) }

// ObserveAbortGap records one abort-to-retry gap.
func (t *Tracer) ObserveAbortGap(d time.Duration) { t.abortGap.Observe(d.Nanoseconds()) }

// ObserveQuiesce records one quiescence wait.
func (t *Tracer) ObserveQuiesce(d time.Duration) { t.quiesce.Observe(d.Nanoseconds()) }

// IrrevocableHold is the histogram of irrevocable-token hold durations.
func (t *Tracer) IrrevocableHold() *Histogram { return &t.irrevHold }

// ObserveIrrevocableHold records one irrevocable-token hold duration
// (switch to release).
func (t *Tracer) ObserveIrrevocableHold(d time.Duration) { t.irrevHold.Observe(d.Nanoseconds()) }

// Count returns how many events of kind k have been recorded (including
// events since overwritten in the rings).
func (t *Tracer) Count(k Kind) int64 { return t.byKind[k].Load() }

// Events returns the retained event history, oldest first, merged across
// shards by the global sequence stamp. Timestamps alone cannot order the
// merge: clocks on different shards can tie or run backwards under NTP
// slew, while Seq is a strict total order. The slice is a copy; recording
// continues unblocked.
func (t *Tracer) Events() []Event {
	var out []Event
	for i := range t.rings {
		out = t.rings[i].snapshot(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recorded returns the total events recorded and how many of those have
// been overwritten (dropped from the retained history).
func (t *Tracer) Recorded() (total, dropped int64) {
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		total += int64(r.total)
		if n := uint64(len(r.buf)); r.total > n {
			dropped += int64(r.total - n)
		}
		r.mu.Unlock()
	}
	return total, dropped
}

// ShardCount reports one ring shard's recording totals.
type ShardCount struct {
	Total   int64 `json:"total"`
	Dropped int64 `json:"dropped"`
}

// RecordedByShard returns per-shard totals and drop counts, in shard order.
// Exporters use this to mark history gaps honestly: a drop on any shard
// means the merged Events() stream has a hole whose Seq range is unknown.
func (t *Tracer) RecordedByShard() []ShardCount {
	out := make([]ShardCount, len(t.rings))
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		out[i].Total = int64(r.total)
		if n := uint64(len(r.buf)); r.total > n {
			out[i].Dropped = int64(r.total - n)
		}
		r.mu.Unlock()
	}
	return out
}

// Snapshot summarizes the tracer's derived views for export: per-kind event
// counts, the topN hottest objects, and histogram summaries. It is cheap
// relative to Events (no event copy) and JSON-serializable.
func (t *Tracer) Snapshot(topN int) Snapshot {
	shards := t.RecordedByShard()
	var total, dropped int64
	var byShard []int64
	for _, sc := range shards {
		total += sc.Total
		dropped += sc.Dropped
	}
	if dropped > 0 {
		byShard = make([]int64, len(shards))
		for i, sc := range shards {
			byShard[i] = sc.Dropped
		}
	}
	byKind := make(map[string]int64, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		if n := t.byKind[k].Load(); n != 0 {
			byKind[k.String()] = n
		}
	}
	return Snapshot{
		Events:          total,
		Dropped:         dropped,
		DroppedByShard:  byShard,
		ByKind:          byKind,
		Hotspots:        t.hot.Top(topN),
		CommitLatency:   t.commitLat.Snapshot(),
		AbortToRetry:    t.abortGap.Snapshot(),
		QuiesceWait:     t.quiesce.Snapshot(),
		IrrevocableHold: t.irrevHold.Snapshot(),
	}
}

// Snapshot is the JSON-serializable summary served by internal/metrics.
type Snapshot struct {
	Events          int64             `json:"events"`
	Dropped         int64             `json:"dropped,omitempty"`
	DroppedByShard  []int64           `json:"dropped_by_shard,omitempty"` // per-shard drops, present when any shard dropped
	ByKind          map[string]int64  `json:"by_kind,omitempty"`
	Hotspots        []HotspotEntry    `json:"hotspots,omitempty"`
	CommitLatency   HistogramSnapshot `json:"commit_latency"`
	AbortToRetry    HistogramSnapshot `json:"abort_to_retry"`
	QuiesceWait     HistogramSnapshot `json:"quiesce_wait"`
	IrrevocableHold HistogramSnapshot `json:"irrevocable_hold"`
}
