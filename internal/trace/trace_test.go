package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRingRetainsWithinCapacity(t *testing.T) {
	tr := New(Config{ShardCapacity: 64, Shards: 1})
	for i := 0; i < 50; i++ {
		tr.Record(EvCommit, uint64(i+1), 0, 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 50 {
		t.Fatalf("events = %d, want 50", len(evs))
	}
	for i, ev := range evs {
		if ev.Txn != uint64(i+1) {
			t.Fatalf("event %d: txn %d, want %d (order lost)", i, ev.Txn, i+1)
		}
		if ev.Kind != EvCommit {
			t.Fatalf("event %d: kind %v", i, ev.Kind)
		}
	}
	if total, dropped := tr.Recorded(); total != 50 || dropped != 0 {
		t.Fatalf("recorded = %d/%d, want 50/0", total, dropped)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Config{ShardCapacity: 16, Shards: 1})
	for i := 0; i < 40; i++ {
		tr.Record(EvRead, uint64(i), 0, 0, 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("retained = %d, want 16", len(evs))
	}
	// Oldest retained should be txn 24 (40-16), newest txn 39.
	if evs[0].Txn != 24 || evs[len(evs)-1].Txn != 39 {
		t.Errorf("retained window [%d, %d], want [24, 39]", evs[0].Txn, evs[len(evs)-1].Txn)
	}
	if total, dropped := tr.Recorded(); total != 40 || dropped != 24 {
		t.Errorf("recorded = %d/%d, want 40/24", total, dropped)
	}
	if got := tr.Count(EvRead); got != 40 {
		t.Errorf("Count(EvRead) = %d, want 40 (counts must survive overwrite)", got)
	}
}

// TestRecordParallel hammers Record from many goroutines (run under -race
// in CI): no event may be lost while the shard rings have capacity.
func TestRecordParallel(t *testing.T) {
	const goroutines = 8
	const perG = 500
	tr := New(Config{ShardCapacity: goroutines * perG, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Record(EvCommit, uint64(g*perG+i), uint64(g), i, 1)
				if i%8 == 0 {
					_ = tr.Events() // readers race the writers
				}
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != goroutines*perG {
		t.Fatalf("events = %d, want %d", len(evs), goroutines*perG)
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.Txn] {
			t.Fatalf("duplicate event for txn %d", ev.Txn)
		}
		seen[ev.Txn] = true
	}
}

func TestHotspotsTop(t *testing.T) {
	var h Hotspots
	for i := 0; i < 100; i++ {
		h.BumpConflict(7)
	}
	for i := 0; i < 10; i++ {
		h.BumpAbort(7)
	}
	h.BumpConflict(3)
	h.BumpAbort(5)
	h.BumpAbort(5)
	top := h.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Obj != 7 || top[0].Conflicts != 100 || top[0].Aborts != 10 {
		t.Errorf("top[0] = %+v, want obj 7 with 100/10", top[0])
	}
	if top[1].Obj != 5 {
		t.Errorf("top[1] = %+v, want obj 5 (2 aborts beat 1 conflict)", top[1])
	}
	if all := h.Top(0); len(all) != 3 {
		t.Errorf("Top(0) = %d entries, want 3", len(all))
	}
}

func TestHotspotsParallel(t *testing.T) {
	var h Hotspots
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.BumpConflict(uint64(i % 17))
				if i%10 == 0 {
					h.BumpAbort(uint64(g))
				}
			}
		}(g)
	}
	wg.Wait()
	var conflicts int64
	for _, e := range h.Top(0) {
		conflicts += e.Conflicts
	}
	if conflicts != 8*1000 {
		t.Errorf("total conflicts = %d, want 8000", conflicts)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (~1µs) and 10 slow ones (~1ms).
	for i := 0; i < 90; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 < 1000 || p50 >= 4096 {
		t.Errorf("p50 = %dns, want the ~1µs bucket", p50)
	}
	if p99 < 1_000_000 || p99 >= 4_194_304 {
		t.Errorf("p99 = %dns, want the ~1ms bucket", p99)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.P50Ns != p50 || s.P99Ns != p99 {
		t.Errorf("snapshot = %+v, disagrees with live quantiles %d/%d", s, p50, p99)
	}
	if s.SumNs != 90*1000+10*1_000_000 {
		t.Errorf("sum = %d", s.SumNs)
	}
	if len(s.Buckets) != 2 {
		t.Errorf("non-empty buckets = %d, want 2", len(s.Buckets))
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	h.Observe(0)
	h.Observe(-5) // clamped to the zero bucket
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("zero-duration quantile = %d", got)
	}
	h.Observe(1 << 62) // far past the last bucket: clamped, not dropped
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Quantile(1.0); got != BucketUpperNs(HistBuckets-1) {
		t.Errorf("max quantile = %d, want last bucket bound", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	tr := New(Config{ShardCapacity: 32, Shards: 1})
	tr.Record(EvBegin, 1, 0, 0, 0)
	tr.Record(EvConflict, 1, 42, 0, 0)
	tr.Hot().BumpConflict(42)
	tr.Hot().BumpAbort(42)
	tr.ObserveCommit(2 * time.Microsecond)
	tr.ObserveAbortGap(time.Millisecond)
	tr.ObserveQuiesce(time.Microsecond)

	snap := tr.Snapshot(5)
	if snap.Events != 2 || snap.ByKind["begin"] != 1 || snap.ByKind["conflict"] != 1 {
		t.Fatalf("snapshot counts = %+v", snap)
	}
	if len(snap.Hotspots) != 1 || snap.Hotspots[0].Obj != 42 {
		t.Fatalf("hotspots = %+v", snap.Hotspots)
	}
	if snap.CommitLatency.Count != 1 || snap.AbortToRetry.Count != 1 || snap.QuiesceWait.Count != 1 {
		t.Fatalf("histograms = %+v", snap)
	}

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Events != snap.Events || back.Hotspots[0].Aborts != 1 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		EvBegin: "begin", EvRead: "read", EvWrite: "write", EvLockAcquire: "lock-acquire",
		EvConflict: "conflict", EvAbort: "abort", EvRetry: "retry", EvCommit: "commit",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind: %q", Kind(200).String())
	}
}
