package trace

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of log-scaled buckets: bucket i counts
// observations in (2^(i-1), 2^i] nanoseconds, so the range spans 1ns to
// ~9 minutes (2^39 ns) with everything larger clamped into the last bucket.
const HistBuckets = 40

// histBucket is one padded bucket: concurrent committers observing similar
// latencies land on the same bucket, so each gets its own cache line (the
// same treatment stats.Counter gives its shards).
type histBucket struct {
	v atomic.Int64
	_ [56]byte
}

// Histogram is a log-bucketed latency histogram. The zero value is ready
// to use; all methods are safe for concurrent use.
type Histogram struct {
	buckets [HistBuckets]histBucket
	count   atomic.Int64
	_       [56]byte
	sum     atomic.Int64
	_       [56]byte
}

// bucketOf maps a duration to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns)) // 0 for 0ns, 1 for 1ns, 2 for 2-3ns, ...
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketUpperNs returns the inclusive upper bound of bucket i in
// nanoseconds (0 for the zero bucket).
func BucketUpperNs(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	h.buckets[bucketOf(ns)].v.Add(1)
	h.count.Add(1)
	if ns > 0 {
		h.sum.Add(ns)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistBucketCount is one non-empty bucket in a snapshot.
type HistBucketCount struct {
	UpperNs int64 `json:"upper_ns"` // inclusive upper bound of the bucket
	Count   int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram with derived
// percentiles, JSON-serializable for the metrics exporter.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	MeanNs  float64           `json:"mean_ns"`
	P50Ns   int64             `json:"p50_ns"`
	P95Ns   int64             `json:"p95_ns"`
	P99Ns   int64             `json:"p99_ns"`
	Buckets []HistBucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram and computes its percentiles. Observations
// racing the copy may be partially included — the usual statistics-counter
// contract.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [HistBuckets]int64
	s := HistogramSnapshot{}
	for i := range h.buckets {
		c := h.buckets[i].v.Load()
		counts[i] = c
		s.Count += c
		if c > 0 {
			s.Buckets = append(s.Buckets, HistBucketCount{UpperNs: BucketUpperNs(i), Count: c})
		}
	}
	s.SumNs = h.sum.Load()
	if s.Count > 0 {
		s.MeanNs = float64(s.SumNs) / float64(s.Count)
	}
	s.P50Ns = quantile(counts[:], s.Count, 0.50)
	s.P95Ns = quantile(counts[:], s.Count, 0.95)
	s.P99Ns = quantile(counts[:], s.Count, 0.99)
	return s
}

// Quantile returns the upper bound of the bucket containing the p-quantile
// (0 < p <= 1) of the live histogram, or 0 when empty.
func (h *Histogram) Quantile(p float64) int64 {
	var counts [HistBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].v.Load()
		total += counts[i]
	}
	return quantile(counts[:], total, p)
}

func quantile(counts []int64, total int64, p float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return BucketUpperNs(i)
		}
	}
	return BucketUpperNs(len(counts) - 1)
}
