package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// hotShards is the number of independent shards in a Hotspots table. Power
// of two.
const hotShards = 16

// hotCount accumulates one object's contention profile. Counters are
// atomic so bumps after the entry exists take no lock.
type hotCount struct {
	conflicts   atomic.Int64 // conflict-handler invocations against the object
	aborts      atomic.Int64 // aborts blamed on the object
	validations atomic.Int64 // commit-clock validation failures / extensions charged to the object
}

// hotShard is one shard of the table: a mutex-guarded map used only for
// entry lookup/insertion.
type hotShard struct {
	mu sync.Mutex
	m  map[uint64]*hotCount
	_  [24]byte
}

// Hotspots maps object handles to conflict/abort counts, answering "which
// objects cause my aborts". Sharded by a handle hash so concurrent
// transactions blaming different objects do not serialize; per-object
// counters are atomics, so repeat offenders cost one map lookup plus one
// atomic add.
type Hotspots struct {
	shards [hotShards]hotShard
}

func (h *Hotspots) get(obj uint64) *hotCount {
	// Fibonacci hash: object handles are small sequential integers, so use
	// the high bits of the product to decorrelate neighbours.
	s := &h.shards[(obj*0x9e3779b97f4a7c15)>>59&(hotShards-1)]
	s.mu.Lock()
	c := s.m[obj]
	if c == nil {
		if s.m == nil {
			s.m = make(map[uint64]*hotCount)
		}
		c = &hotCount{}
		s.m[obj] = c
	}
	s.mu.Unlock()
	return c
}

// BumpConflict counts one conflict-handler invocation against obj.
func (h *Hotspots) BumpConflict(obj uint64) { h.get(obj).conflicts.Add(1) }

// BumpAbort counts one abort blamed on obj.
func (h *Hotspots) BumpAbort(obj uint64) { h.get(obj).aborts.Add(1) }

// BumpValidation counts one commit-clock validation failure or snapshot
// extension charged to obj. Without this, clock-induced churn is invisible
// to the hotspot table and AdaptGranularity never sees it.
func (h *Hotspots) BumpValidation(obj uint64) { h.get(obj).validations.Add(1) }

// HotspotEntry is one object's contention profile.
type HotspotEntry struct {
	Obj         uint64 `json:"obj"`
	Conflicts   int64  `json:"conflicts"`
	Aborts      int64  `json:"aborts"`
	Validations int64  `json:"validations,omitempty"`
}

// Score orders hotspots: aborts are the costly outcome, conflicts the
// leading indicator, so aborts dominate and conflicts break ties.
// Validation churn (clock-extension walks, stale-snapshot aborts) sits in
// between: each event forces at least a read-set walk, so it outweighs a
// raw conflict probe but not a full abort.
func (e HotspotEntry) Score() int64 { return e.Aborts*1000 + e.Validations*8 + e.Conflicts }

// Top returns the n hottest objects, most contended first. n <= 0 returns
// every entry.
func (h *Hotspots) Top(n int) []HotspotEntry {
	var out []HotspotEntry
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		for obj, c := range s.m {
			out = append(out, HotspotEntry{
				Obj:         obj,
				Conflicts:   c.conflicts.Load(),
				Aborts:      c.aborts.Load(),
				Validations: c.validations.Load(),
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if si, sj := out[i].Score(), out[j].Score(); si != sj {
			return si > sj
		}
		return out[i].Obj < out[j].Obj
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
