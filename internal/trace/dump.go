package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Dump is the on-disk form of a tracer's retained history, written by
// `stmbench -trace-dump` and read back by `cmd/stmtrace`. Drop counts ride
// along so offline consumers can tell a complete history from a window.
type Dump struct {
	TotalEvents    int64   `json:"total_events"`
	Dropped        int64   `json:"dropped"`
	DroppedByShard []int64 `json:"dropped_by_shard,omitempty"`
	Events         []Event `json:"events"`
}

// DumpState captures the tracer's retained events plus per-shard drop
// accounting, ready for WriteDump.
func (t *Tracer) DumpState() Dump {
	shards := t.RecordedByShard()
	d := Dump{Events: t.Events()}
	var anyDropped bool
	byShard := make([]int64, len(shards))
	for i, sc := range shards {
		d.TotalEvents += sc.Total
		d.Dropped += sc.Dropped
		byShard[i] = sc.Dropped
		anyDropped = anyDropped || sc.Dropped > 0
	}
	if anyDropped {
		d.DroppedByShard = byShard
	}
	return d
}

// WriteDump serializes d as JSON.
func WriteDump(w io.Writer, d Dump) error {
	enc := json.NewEncoder(w)
	return enc.Encode(d)
}

// WriteDumpFile writes d to path, creating or truncating it.
func WriteDumpFile(path string, d Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDump(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDump parses a trace dump. It accepts either the Dump envelope or a
// bare JSON array of events (hand-built fixtures). Events are re-sorted by
// Seq so consumers can rely on order regardless of how the file was built.
func ReadDump(r io.Reader) (Dump, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Dump{}, err
	}
	var d Dump
	// Peek at the first non-space byte: '[' means a bare event array.
	bare := false
	for _, c := range data {
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		bare = c == '['
		break
	}
	if bare {
		if err := json.Unmarshal(data, &d.Events); err != nil {
			return Dump{}, fmt.Errorf("trace dump: %w", err)
		}
		d.TotalEvents = int64(len(d.Events))
	} else if err := json.Unmarshal(data, &d); err != nil {
		return Dump{}, fmt.Errorf("trace dump: %w", err)
	}
	sort.Slice(d.Events, func(i, j int) bool { return d.Events[i].Seq < d.Events[j].Seq })
	return d, nil
}

// ReadDumpFile reads a trace dump from path ("-" or "" means stdin).
func ReadDumpFile(path string) (Dump, error) {
	if path == "" || path == "-" {
		return ReadDump(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return Dump{}, err
	}
	defer f.Close()
	return ReadDump(f)
}
