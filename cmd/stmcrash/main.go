// Command stmcrash is the standalone Jepsen-style crash harness for the
// durable STM store (internal/durable + internal/durability): it re-executes
// itself as a bank-transfer workload child, kills the child — blackbox
// SIGKILL at a random moment, or whitebox at a seeded WAL-protocol
// killpoint — recovers the store, and verifies the durability invariants
// (conservation, monotone commit clock, no lost acknowledged commit, no
// resurrected abort).
//
//	stmcrash -runtime mvstm -iters 100
//	stmcrash -runtime eager -killpoint wal-fsync -iters 20
//	stmcrash -runtime lazy -window 1ms -iters 50 -artifacts /tmp/breaches
//
// The exit status is 0 when every iteration holds every invariant, 1 on any
// breach (with artifact directories persisted when -artifacts or
// STM_DURABILITY_ARTIFACTS is set), 2 on harness plumbing errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/durability"
	"repro/internal/faultinject"
	"repro/internal/stmapi"
)

func main() {
	// The harness re-executes this binary as the workload child.
	if os.Getenv(durability.ChildEnvVar) == "1" {
		durability.ChildMain()
		return
	}

	runtimes := strings.Join(stmapi.Runtimes(), ", ")
	points := make([]string, 0, len(faultinject.WALPoints))
	for _, p := range faultinject.WALPoints {
		points = append(points, p.String())
	}
	var (
		dir        = flag.String("dir", "", "store directory (default: a fresh temp dir)")
		runtime    = flag.String("runtime", "mvstm", "STM runtime to crash: "+runtimes)
		iterations = flag.Int("iters", 50, "crash-recover iterations")
		seed       = flag.Uint64("seed", 1, "seed for kill timing and killpoint selection")
		window     = flag.Duration("window", 0, "group-commit fsync window (0 = fsync ASAP)")
		ckpt       = flag.Duration("ckpt", 25*time.Millisecond, "child checkpoint period")
		killpoint  = flag.String("killpoint", "", "whitebox killpoint ("+strings.Join(points, ", ")+"); empty = blackbox SIGKILL")
		killrate   = flag.Uint64("killrate", 32, "whitebox kill probability in 1/1024ths of arrivals")
		artifacts  = flag.String("artifacts", os.Getenv("STM_DURABILITY_ARTIFACTS"), "directory to persist breach artifacts under")
		quiet      = flag.Bool("q", false, "suppress per-iteration progress")
	)
	flag.Parse()

	if *killpoint != "" {
		if _, ok := faultinject.PointByName(*killpoint); !ok {
			fmt.Fprintf(os.Stderr, "stmcrash: unknown killpoint %q (known: %s)\n", *killpoint, strings.Join(points, ", "))
			os.Exit(2)
		}
	}
	storeDir := *dir
	if storeDir == "" {
		d, err := os.MkdirTemp("", "stmcrash-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmcrash: %v\n", err)
			os.Exit(2)
		}
		defer os.RemoveAll(d)
		storeDir = d
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmcrash: %v\n", err)
		os.Exit(2)
	}

	opts := durability.Options{
		Dir:             storeDir,
		Runtime:         *runtime,
		ChildCommand:    []string{exe},
		Iterations:      *iterations,
		Seed:            *seed,
		SyncWindow:      *window,
		CheckpointEvery: *ckpt,
		KillPoint:       *killpoint,
		KillRate:        *killrate,
		ArtifactDir:     *artifacts,
	}
	if !*quiet {
		opts.Log = os.Stderr
	}
	res, err := durability.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmcrash: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("stmcrash: %d iterations on %s, %d kills, %d commits acked, %d aborted, %d records replayed, %d torn tails, %d snapshot recoveries\n",
		res.Iterations, *runtime, res.Kills, res.Acked, res.Aborted, res.Replayed, res.TornTails, res.Snapshots)
	if len(res.Breaches) > 0 {
		for _, b := range res.Breaches {
			fmt.Fprintf(os.Stderr, "BREACH %s\n", b)
		}
		for _, a := range res.Artifacts {
			fmt.Fprintf(os.Stderr, "artifact: %s\n", a)
		}
		os.Exit(1)
	}
	fmt.Println("stmcrash: all invariants held")
}
