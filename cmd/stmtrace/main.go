// Command stmtrace turns STM trace dumps into causal artifacts: Perfetto
// timelines, Graphviz conflict graphs, and starvation reports.
//
// Input is a trace dump written by `stmbench -trace-dump FILE` (or any
// JSON file holding a trace.Dump envelope or a bare event array); "-" or
// no path reads stdin.
//
//	stmtrace export -perfetto trace.json > trace.perfetto.json
//	stmtrace export -dot -o conflicts.dot trace.json
//	stmtrace starve trace.json
//	stmtrace starve -json -max-consec 8 trace.json   # exit 1 if exceeded
//
// Load the Perfetto export at https://ui.perfetto.dev (Open trace file):
// one track per concurrency lane, one slice per transaction attempt,
// flow arrows for aborted-by / doomed-by / invalidated-by / stolen-from
// edges.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/causal"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "export":
		err = runExport(os.Args[2:])
	case "starve":
		err = runStarve(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "stmtrace: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "stmtrace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  stmtrace export -perfetto|-dot [-o FILE] [TRACE]
  stmtrace starve [-json] [-k N] [-max-consec N] [TRACE]

TRACE is a JSON trace dump from stmbench -trace-dump (default stdin).
`)
}

// load reads the dump named by the flagset's positional argument and
// builds the conflict graph.
func load(fs *flag.FlagSet) (*causal.Graph, trace.Dump, error) {
	path := fs.Arg(0)
	d, err := trace.ReadDumpFile(path)
	if err != nil {
		return nil, d, err
	}
	if len(d.Events) == 0 {
		return nil, d, fmt.Errorf("no events in trace %q", path)
	}
	return causal.Build(d.Events, causal.Config{}), d, nil
}

func output(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func runExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	perfetto := fs.Bool("perfetto", false, "emit Chrome trace-event JSON for ui.perfetto.dev")
	dot := fs.Bool("dot", false, "emit Graphviz DOT of the conflict graph")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *perfetto == *dot {
		return fmt.Errorf("pick exactly one of -perfetto or -dot")
	}
	g, d, err := load(fs)
	if err != nil {
		return err
	}
	if d.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "stmtrace: note: %d of %d events were dropped before the dump; the graph is a window\n",
			d.Dropped, d.TotalEvents)
	}
	w, err := output(*out)
	if err != nil {
		return err
	}
	if *perfetto {
		err = causal.WritePerfetto(w, g)
	} else {
		err = causal.WriteDOT(w, g)
	}
	if cerr := closeOut(w); err == nil {
		err = cerr
	}
	return err
}

func closeOut(w io.WriteCloser) error {
	if w == os.Stdout {
		return nil
	}
	return w.Close()
}

func runStarve(args []string) error {
	fs := flag.NewFlagSet("starve", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	topK := fs.Int("k", 5, "victim chains / starved transactions shown")
	maxConsec := fs.Int("max-consec", 0, "exit nonzero if any transaction exceeds N consecutive aborts (0 = report only)")
	fs.Parse(args)
	g, _, err := load(fs)
	if err != nil {
		return err
	}
	rep := causal.Analyze(g)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(rep, *topK)
	}
	if *maxConsec > 0 && rep.MaxConsecutiveAborts > *maxConsec {
		return fmt.Errorf("starvation: txn %d saw %d consecutive aborts (limit %d)",
			rep.MaxConsecutiveTxn, rep.MaxConsecutiveAborts, *maxConsec)
	}
	return nil
}

func printReport(rep causal.Report, topK int) {
	fmt.Printf("transactions %d  attempts %d  commits %d  aborts %d\n",
		rep.Transactions, rep.Attempts, rep.Commits, rep.Aborts)
	fmt.Printf("wasted work: %s of %s (%.1f%%)\n",
		time.Duration(rep.WastedNS), time.Duration(rep.TotalNS), 100*rep.WastedWorkRatio)
	fmt.Printf("max consecutive aborts: %d", rep.MaxConsecutiveAborts)
	if rep.MaxConsecutiveTxn != 0 {
		fmt.Printf(" (txn %d)", rep.MaxConsecutiveTxn)
	}
	fmt.Println()
	if rep.LongestChainDepth > 0 {
		fmt.Printf("longest victim chain (depth %d):", rep.LongestChainDepth)
		for i, ref := range rep.LongestChain {
			if i > 0 {
				fmt.Print(" ->")
			}
			fmt.Printf(" txn %d#%d", ref.Txn, ref.N)
		}
		fmt.Println()
	}
	if len(rep.ChainDepths) > 0 {
		depths := make([]int, 0, len(rep.ChainDepths))
		for d := range rep.ChainDepths {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		fmt.Print("chain depth distribution:")
		for _, d := range depths {
			fmt.Printf("  %d:%d", d, rep.ChainDepths[d])
		}
		fmt.Println()
	}
	if len(rep.TopStarved) > 0 {
		fmt.Println("most starved transactions:")
		n := topK
		if n > len(rep.TopStarved) {
			n = len(rep.TopStarved)
		}
		for _, ts := range rep.TopStarved[:n] {
			outcome := "never committed"
			if ts.Committed {
				outcome = "eventually committed"
			}
			fmt.Printf("  txn %-8d %3d aborts (max %d consecutive), %s wasted, %s\n",
				ts.Txn, ts.Aborts, ts.MaxConsecutiveAborts, time.Duration(ts.WastedNS), outcome)
		}
	}
	if len(rep.Dominance) > 0 {
		fmt.Println("object dominance:")
		n := topK
		if n > len(rep.Dominance) {
			n = len(rep.Dominance)
		}
		for _, d := range rep.Dominance[:n] {
			fmt.Printf("  obj %-8d %4d aborts  %4d waits", d.Obj, d.Aborts, d.Waits)
			if d.TopKiller != 0 {
				fmt.Printf("  top winner txn %d (%.0f%%)", d.TopKiller, 100*d.TopKillerShare)
			}
			fmt.Println()
		}
	}
	if len(rep.EdgeCounts) > 0 {
		kinds := make([]string, 0, len(rep.EdgeCounts))
		for k := range rep.EdgeCounts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Print("edges:")
		for _, k := range kinds {
			fmt.Printf("  %s %d", k, rep.EdgeCounts[k])
		}
		fmt.Println()
	}
}
