// Command stmbench regenerates the paper's evaluation figures on the host
// machine. Each -fig value corresponds to a table or figure of the paper:
//
//	stmbench -fig 6            anomaly matrix (Section 2, Figure 6)
//	stmbench -fig 13           static barrier-removal counts (Figure 13)
//	stmbench -fig 15           strong-atomicity overhead, both barriers
//	stmbench -fig 16           read-barrier-only overhead
//	stmbench -fig 17           write-barrier-only overhead
//	stmbench -fig 18           Tsp scalability
//	stmbench -fig 19           OO7 scalability
//	stmbench -fig 20           JBB scalability
//	stmbench -fig par          parallel STM hot-path throughput sweep
//	stmbench -fig all          everything
//
// Flags -scale and -maxthreads stretch the workloads; -reps controls timed
// repetitions per configuration. The parallel sweep drives the STM
// runtimes' Go API directly (read-heavy/write-heavy/mixed at growing
// goroutine counts); with -json its results are emitted as a JSON array
// (benchmark name, config, ns/op, commits, aborts) suitable for tracking a
// BENCH_*.json perf trajectory across revisions:
//
//	stmbench -fig par -json > BENCH_par.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"

	"repro/internal/bench"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	// Benchmarks allocate heavily and time short runs; relax the collector
	// so GC pauses do not dominate the measurements.
	debug.SetGCPercent(400)
	fig := flag.String("fig", "all", "figure to regenerate: 6, 13, 15, 16, 17, 18, 19, 20, par or all")
	scale := flag.Int("scale", 1, "workload scale factor")
	maxThreads := flag.Int("maxthreads", bench.MaxThreads(), "largest thread count in scalability sweeps")
	reps := flag.Int("reps", bench.Reps, "timed repetitions per configuration")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results (parallel sweep)")
	parTxns := flag.Int("partxns", 100_000, "transactions per parallel-throughput configuration")
	flag.Parse()
	bench.Reps = *reps

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("6", func() error {
		out, ok := bench.RunAnomalies()
		fmt.Print(out)
		if !ok {
			return fmt.Errorf("anomaly matrix does not match the paper")
		}
		fmt.Println("matrix matches Figure 6")
		return nil
	})
	run("13", func() error {
		res, err := bench.RunStatic()
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		return nil
	})
	overhead := func(name, figure string, sel vm.BarrierSelect) {
		run(name, func() error {
			res, err := bench.RunOverhead(figure, sel, *scale)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
	overhead("15", "Figure 15 (read+write barriers)", vm.BarrierAll)
	overhead("16", "Figure 16 (read barriers only)", vm.BarrierReadsOnly)
	overhead("17", "Figure 17 (write barriers only)", vm.BarrierWritesOnly)

	scaling := func(name, figure string, w workloads.Workload) {
		run(name, func() error {
			res, err := bench.RunScaling(figure, w, bench.ThreadSweep(*maxThreads), *scale)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			lo, hi := res.StrongWeakGap("Strong+WholeProg")
			fmt.Printf("strong/weak ratio: %.2fx at %d thread(s), %.2fx at %d threads\n",
				lo, res.Threads[0], hi, res.Threads[len(res.Threads)-1])
			return nil
		})
	}
	scaling("18", "Figure 18", workloads.Tsp())
	scaling("19", "Figure 19", workloads.OO7())
	scaling("20", "Figure 20", workloads.JBB())

	run("par", func() error {
		// Sweep 1, 2, 4, ... goroutines; at least up to 4 even on small
		// hosts so oversubscription behavior is visible.
		maxG := *maxThreads
		if maxG < 4 {
			maxG = 4
		}
		results, err := bench.RunParallelSweep(bench.ParallelSpecs(maxG, *parTxns))
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		}
		fmt.Print(bench.FormatParallel(results))
		return nil
	})
}
