// Command stmbench regenerates the paper's evaluation figures on the host
// machine. Each -fig value corresponds to a table or figure of the paper:
//
//	stmbench -fig 6            anomaly matrix (Section 2, Figure 6)
//	stmbench -fig 13           static barrier-removal counts (Figure 13)
//	stmbench -fig 15           strong-atomicity overhead, both barriers
//	stmbench -fig 16           read-barrier-only overhead
//	stmbench -fig 17           write-barrier-only overhead
//	stmbench -fig 18           Tsp scalability
//	stmbench -fig 19           OO7 scalability
//	stmbench -fig 20           JBB scalability
//	stmbench -fig par          parallel STM hot-path throughput sweep
//	stmbench -fig stamp        STAMP-shape workload sweep (vacation/kmeans/genome)
//	stmbench -fig crash        crash-recovery robustness run (orphan injection)
//	stmbench -fig causal       flight-recorder starvation profile + tracing overhead
//	stmbench -fig durable      durable-store group-commit window sweep (WAL fsync cost)
//	stmbench -fig elide        barrier-elision A/B (stmvet manifest off/on + soundness oracle)
//	stmbench -fig all          everything
//
// The elide figure builds its manifest in-process from the elidewl
// workload package (or loads one with -manifest FILE) and certifies it
// with the soundness oracle; any breach fails the run:
//
//	stmbench -fig elide -json > BENCH_010.json
//	stmvet elide -o m.json ./internal/workloads/elidewl && stmbench -fig elide -manifest m.json
//
// An unknown -fig value is an error that lists the known figures. The
// -validation flag selects the commit-time validation mode for the par and
// stamp sweeps: "clock" (the default commit-clock fast path) or "walk"
// (full read-set walks), enabling before/after A/B runs:
//
//	stmbench -fig stamp -validation walk -json > walk.json
//	stmbench -fig stamp -validation clock -json > clock.json
//
// Flags -scale and -maxthreads stretch the workloads; -reps controls timed
// repetitions per configuration. The parallel sweep drives the STM
// runtimes' Go API directly (read-heavy/write-heavy/mixed at growing
// goroutine counts); with -json its results are emitted as a JSON array
// (benchmark name, config, ns/op, commits, aborts) suitable for tracking a
// BENCH_*.json perf trajectory across revisions:
//
//	stmbench -fig par -json > BENCH_par.json
//
// Observability: -trace enables the event tracer on the parallel sweep's
// runtimes and prints conflict attribution (hottest objects) and latency
// percentiles afterwards; -metrics-addr serves the live /metrics endpoint
// (internal/metrics) while the sweep runs, for cmd/stmtop to poll:
//
//	stmbench -fig par -trace
//	stmbench -fig par -metrics-addr localhost:9190 &  stmtop -addr localhost:9190
//
// -trace-dump FILE writes the retained event history (with a causal
// flight recorder attached) as a JSON dump for offline analysis with
// cmd/stmtrace:
//
//	stmbench -fig crash -trace-dump crash.trace.json
//	stmtrace export -perfetto crash.trace.json > crash.perfetto.json
//	stmtrace starve crash.trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"

	"repro/internal/bench"
	"repro/internal/causal"
	"repro/internal/conflict"
	"repro/internal/durable"
	"repro/internal/elide"
	"repro/internal/metrics"
	"repro/internal/stmapi"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// knownFigs lists every figure name run() dispatches on, in presentation
// order. Keep in sync with the run() calls below.
var knownFigs = []string{"6", "13", "15", "16", "17", "18", "19", "20", "par", "stamp", "crash", "causal", "durable", "elide"}

func knownFig(name string) bool {
	for _, f := range knownFigs {
		if f == name {
			return true
		}
	}
	return false
}

func main() {
	// Benchmarks allocate heavily and time short runs; relax the collector
	// so GC pauses do not dominate the measurements.
	debug.SetGCPercent(400)
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(knownFigs, ", ")+" or all")
	scale := flag.Int("scale", 1, "workload scale factor")
	maxThreads := flag.Int("maxthreads", bench.MaxThreads(), "largest thread count in scalability sweeps")
	reps := flag.Int("reps", bench.Reps, "timed repetitions per configuration")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results (parallel sweep)")
	parTxns := flag.Int("partxns", 100_000, "transactions per parallel-throughput configuration")
	traceOn := flag.Bool("trace", false, "enable the event tracer on the parallel sweep; print hotspots and latency percentiles")
	traceDump := flag.String("trace-dump", "", "write the retained trace events (JSON) to FILE for cmd/stmtrace; implies tracing")
	metricsAddr := flag.String("metrics-addr", "", "serve the live /metrics endpoint (for cmd/stmtop) on host:port while running")
	policy := flag.String("policy", "", "contention policy for the parallel sweep: "+
		fmt.Sprintf("%v", conflict.PolicyNames)+" (empty consults $"+conflict.PolicyEnv+", default backoff)")
	seed := flag.Uint64("seed", 1, "fault-injection seed for the crash figure")
	validation := flag.String("validation", "", `commit-time validation for the par/stamp sweeps: "clock" (default) or "walk"`)
	manifestPath := flag.String("manifest", "", "elision manifest for the elide figure (empty: build in-process with the stmvet analyses)")
	versioning := flag.String("versioning", "", "restrict the par/stamp/crash/causal/durable sweeps to one runtime: "+
		fmt.Sprintf("%v", stmapi.Runtimes())+" (empty sweeps all)")
	// The usage text enumerates the registries (figures and runtimes are
	// both open-ended sets), so `stmbench -h` is always current: a newly
	// registered runtime shows up here without anyone editing a string.
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage: stmbench [flags]\n\n")
		fmt.Fprintf(out, "Figures (-fig):\n  %s, all\n\n", strings.Join(knownFigs, ", "))
		fmt.Fprintf(out, "Runtimes (-versioning, from the stmapi registry):\n  %s\n\n", strings.Join(stmapi.Runtimes(), ", "))
		fmt.Fprintf(out, "Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	bench.Reps = *reps
	// Fail fast on an unknown figure before anything runs: a typo should
	// not silently produce an empty report.
	if *fig != "all" && !knownFig(*fig) {
		fmt.Fprintf(os.Stderr, "stmbench: unknown figure %q (known: %s, all)\n",
			*fig, strings.Join(knownFigs, ", "))
		os.Exit(2)
	}
	// Fail fast on an unknown policy — from the flag or from the
	// STM_CONFLICT_POLICY environment variable — before any figure runs.
	if _, err := conflict.ByNameOrEnv(*policy); err != nil {
		fmt.Fprintf(os.Stderr, "stmbench: %v\n", err)
		os.Exit(2)
	}
	switch *validation {
	case "", "clock", "walk":
	default:
		fmt.Fprintf(os.Stderr, "stmbench: unknown validation mode %q (want clock or walk)\n", *validation)
		os.Exit(2)
	}
	// Fail fast on an unknown runtime name too (mirroring the policy
	// check): a typo must not silently run an empty sweep.
	if *versioning != "" {
		known := false
		for _, name := range stmapi.Runtimes() {
			if name == *versioning {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "stmbench: unknown runtime %q (have %v)\n", *versioning, stmapi.Runtimes())
			os.Exit(2)
		}
	}

	var reg *metrics.Registry
	var tracer *trace.Tracer
	var recorder *causal.Recorder
	if *metricsAddr != "" || *traceOn || *traceDump != "" {
		var tcfg trace.Config
		if *traceDump != "" {
			// Offline analysis wants the whole run, not a ring-tail window:
			// deep rings keep flow edges' endpoints inside the dump.
			tcfg.ShardCapacity = 1 << 16
		}
		tracer = trace.New(tcfg)
		// A causal flight recorder always rides along with the tracer: it is
		// ring-bounded, and it feeds the `causal` line in /metrics + stmtop
		// and the trace-dump consumers.
		recorder = causal.NewRecorder(causal.Config{})
		tracer.SetSink(recorder)
	}
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		srv, err := reg.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics\n", srv.Addr)
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("6", func() error {
		out, ok := bench.RunAnomalies()
		fmt.Print(out)
		if !ok {
			return fmt.Errorf("anomaly matrix does not match the paper")
		}
		fmt.Println("matrix matches Figure 6")
		return nil
	})
	run("13", func() error {
		res, err := bench.RunStatic()
		if err != nil {
			return err
		}
		fmt.Print(res.String())
		return nil
	})
	overhead := func(name, figure string, sel vm.BarrierSelect) {
		run(name, func() error {
			res, err := bench.RunOverhead(figure, sel, *scale)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			return nil
		})
	}
	overhead("15", "Figure 15 (read+write barriers)", vm.BarrierAll)
	overhead("16", "Figure 16 (read barriers only)", vm.BarrierReadsOnly)
	overhead("17", "Figure 17 (write barriers only)", vm.BarrierWritesOnly)

	scaling := func(name, figure string, w workloads.Workload) {
		run(name, func() error {
			res, err := bench.RunScaling(figure, w, bench.ThreadSweep(*maxThreads), *scale)
			if err != nil {
				return err
			}
			fmt.Print(res.String())
			lo, hi := res.StrongWeakGap("Strong+WholeProg")
			fmt.Printf("strong/weak ratio: %.2fx at %d thread(s), %.2fx at %d threads\n",
				lo, res.Threads[0], hi, res.Threads[len(res.Threads)-1])
			return nil
		})
	}
	scaling("18", "Figure 18", workloads.Tsp())
	scaling("19", "Figure 19", workloads.OO7())
	scaling("20", "Figure 20", workloads.JBB())

	run("par", func() error {
		// Sweep 1, 2, 4, ... goroutines; at least up to 4 even on small
		// hosts so oversubscription behavior is visible.
		maxG := *maxThreads
		if maxG < 4 {
			maxG = 4
		}
		var opts []bench.ParallelOption
		if tracer != nil {
			opts = append(opts, bench.WithTracer(tracer))
		}
		if reg != nil {
			// Each measurement creates a fresh runtime; re-register it under
			// a stable per-runtime name so stmtop always sees the one
			// currently running, whichever runtime the registry built.
			opts = append(opts, bench.WithRuntime(func(rt stmapi.Runtime) {
				reg.RegisterRuntime("par/"+rt.Name(), rt)
			}))
		}
		specs := bench.ParallelSpecs(maxG, *parTxns)
		specs = filterVersioning(specs, func(s bench.ParallelSpec) string { return s.Versioning }, *versioning)
		for i := range specs {
			specs[i].Policy = *policy
			specs[i].Validation = *validation
		}
		results, err := bench.RunParallelSweep(specs, opts...)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(results); err != nil {
				return err
			}
		} else {
			fmt.Print(bench.FormatParallel(results))
		}
		if *traceOn && tracer != nil {
			printTraceSummary(tracer, recorder)
		}
		return nil
	})

	run("stamp", func() error {
		maxG := *maxThreads
		if maxG < 4 {
			maxG = 4
		}
		specs := bench.StampSpecs(maxG, *parTxns)
		specs = filterVersioning(specs, func(s bench.StampSpec) string { return s.Versioning }, *versioning)
		for i := range specs {
			specs[i].Policy = *policy
			specs[i].Validation = *validation
		}
		results, err := bench.RunStampSweep(specs)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		}
		fmt.Print(bench.FormatStamp(results))
		return nil
	})

	run("crash", func() error {
		var opts []bench.ParallelOption
		if tracer != nil {
			opts = append(opts, bench.WithTracer(tracer))
		}
		if reg != nil {
			opts = append(opts, bench.WithRuntime(func(rt stmapi.Runtime) {
				reg.RegisterRuntime("crash/"+rt.Name(), rt)
			}))
		}
		specs := bench.CrashSpecs(*seed)
		specs = filterVersioning(specs, func(s bench.CrashSpec) string { return s.Versioning }, *versioning)
		results, err := bench.RunCrashSweep(specs, opts...)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if encErr := enc.Encode(results); encErr != nil && err == nil {
				err = encErr
			}
		} else {
			fmt.Print(bench.FormatCrash(results))
		}
		if err != nil {
			return err
		}
		fmt.Println("all crash runs conserved balances and restored every record")
		if *traceOn && tracer != nil {
			printTraceSummary(tracer, recorder)
		}
		return nil
	})

	run("causal", func() error {
		maxG := *maxThreads
		if maxG < 4 {
			maxG = 4
		}
		// The causal figure manages its own tracer/recorder pairs: each spec
		// needs a pristine baseline run and a pristine traced run.
		specs := bench.CausalSpecs(maxG, *parTxns)
		specs = filterVersioning(specs, func(s bench.CausalSpec) string { return s.Versioning }, *versioning)
		results, err := bench.RunCausalSweep(specs)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		}
		fmt.Print(bench.FormatCausal(results))
		return nil
	})

	run("durable", func() error {
		specs := bench.DurableSpecs(*seed)
		specs = filterVersioning(specs, func(s bench.DurableSpec) string { return s.Versioning }, *versioning)
		var onStore func(string, *durable.Store)
		if reg != nil {
			onStore = reg.RegisterStore
		}
		results, err := bench.RunDurableSweep(specs, onStore)
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(results)
		}
		fmt.Print(bench.FormatDurable(results))
		return nil
	})

	run("elide", func() error {
		var m *elide.Manifest
		if *manifestPath != "" {
			loaded, err := elide.ReadFile(*manifestPath)
			if err != nil {
				return err
			}
			m = loaded
			fmt.Fprintf(os.Stderr, "elide: loaded %s (%d site(s))\n", *manifestPath, len(m.Sites))
		} else {
			built, stats, err := bench.BuildElideManifest(".")
			if err != nil {
				return err
			}
			m = built
			fmt.Fprintf(os.Stderr, "elide: analyzed %s: %d function(s), %d site(s), %d elidable\n",
				bench.ElideWorkloadPackage, stats.Functions, stats.Sites, stats.Elidable)
		}
		results, err := bench.RunElideSweep(m, *scale)
		if results != nil {
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				if encErr := enc.Encode(results); encErr != nil && err == nil {
					err = encErr
				}
			} else {
				fmt.Print(bench.FormatElide(results))
			}
		}
		return err
	})

	if *traceDump != "" && tracer != nil {
		if err := trace.WriteDumpFile(*traceDump, tracer.DumpState()); err != nil {
			fmt.Fprintf(os.Stderr, "trace-dump: %v\n", err)
			os.Exit(1)
		}
		d := tracer.DumpState()
		fmt.Fprintf(os.Stderr, "trace-dump: wrote %d events to %s (%d dropped before the dump)\n",
			len(d.Events), *traceDump, d.Dropped)
	}
}

// filterVersioning keeps only specs whose runtime name matches want; an
// empty want keeps everything (the full registry sweep).
func filterVersioning[T any](specs []T, version func(T) string, want string) []T {
	if want == "" {
		return specs
	}
	out := specs[:0]
	for _, s := range specs {
		if version(s) == want {
			out = append(out, s)
		}
	}
	return out
}

// printTraceSummary renders the sweep-wide conflict attribution and latency
// profile the tracer accumulated (to stderr, keeping -json stdout clean),
// plus the flight recorder's causal summary when one is attached.
func printTraceSummary(t *trace.Tracer, rec *causal.Recorder) {
	snap := t.Snapshot(10)
	w := os.Stderr
	fmt.Fprintf(w, "\ntrace: %d events recorded (%d beyond ring capacity)\n", snap.Events, snap.Dropped)
	fmt.Fprintf(w, "trace: commits %d, aborts %d, conflicts %d\n",
		snap.ByKind["commit"], snap.ByKind["abort"], snap.ByKind["conflict"])
	if len(snap.Hotspots) > 0 {
		fmt.Fprintf(w, "trace: hottest objects (aborts/conflicts):")
		for _, h := range snap.Hotspots {
			fmt.Fprintf(w, "  #%d %d/%d", h.Obj, h.Aborts, h.Conflicts)
		}
		fmt.Fprintln(w)
	}
	cl := snap.CommitLatency
	fmt.Fprintf(w, "trace: commit latency p50 %dns  p95 %dns  p99 %dns  mean %.0fns (n=%d)\n",
		cl.P50Ns, cl.P95Ns, cl.P99Ns, cl.MeanNs, cl.Count)
	if snap.AbortToRetry.Count > 0 {
		fmt.Fprintf(w, "trace: abort-to-retry gap p50 %dns  p99 %dns (n=%d)\n",
			snap.AbortToRetry.P50Ns, snap.AbortToRetry.P99Ns, snap.AbortToRetry.Count)
	}
	if snap.QuiesceWait.Count > 0 {
		fmt.Fprintf(w, "trace: quiescence wait p50 %dns  p99 %dns (n=%d)\n",
			snap.QuiesceWait.P50Ns, snap.QuiesceWait.P99Ns, snap.QuiesceWait.Count)
	}
	if rec != nil {
		live := rec.Live()
		rep := causal.Analyze(rec.Graph())
		fmt.Fprintf(w, "causal: %d attempts, %d edges, wasted work %.1f%%, max consecutive aborts %d",
			live.Attempts, live.Edges, live.WastedWorkPct, rep.MaxConsecutiveAborts)
		if rep.MaxConsecutiveTxn != 0 {
			fmt.Fprintf(w, " (txn %d)", rep.MaxConsecutiveTxn)
		}
		fmt.Fprintln(w)
		if rep.LongestChainDepth > 1 {
			fmt.Fprintf(w, "causal: longest victim chain depth %d\n", rep.LongestChainDepth)
		}
	}
}
