// Package cmd_test smoke-tests the command-line tools end to end: each
// binary is built once into a temp dir and exercised on a real program.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

const sampleTJ = `
class Counter {
  var n: int;
  func work(iters: int) {
    for (var i = 0; i < iters; i++) { atomic { n = n + 1; } }
  }
}
class Main {
  static func main() {
    var c = new Counter();
    var t = spawn c.work(arg(0));
    c.work(arg(0));
    join(t);
    print(c.n);
  }
}`

func writeSample(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "sample.tj")
	if err := os.WriteFile(p, []byte(sampleTJ), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTjrunTool(t *testing.T) {
	bin := buildTool(t, "tjrun")
	src := writeSample(t)
	for _, mode := range []string{"synch", "weak-eager", "weak-lazy", "strong", "strong-dea", "strong-lazy"} {
		out, err := exec.Command(bin, "-mode", mode, src, "250").CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", mode, err, out)
		}
		if got := strings.TrimSpace(string(out)); got != "500" {
			t.Errorf("%s: output %q, want 500", mode, got)
		}
	}
	// Stats flag and bad inputs.
	out, err := exec.Command(bin, "-mode", "strong", "-stats", src, "10").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "txn commits") {
		t.Errorf("stats run: %v\n%s", err, out)
	}
	if _, err := exec.Command(bin, "-mode", "nope", src).CombinedOutput(); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := exec.Command(bin, src, "notanint").CombinedOutput(); err == nil {
		t.Error("bad argument accepted")
	}
}

func TestTjcTool(t *testing.T) {
	bin := buildTool(t, "tjc")
	src := writeSample(t)
	out, err := exec.Command(bin, "-O", "4", "-fig13", "-method", "Main.main", "-ir", src).CombinedOutput()
	if err != nil {
		t.Fatalf("tjc: %v\n%s", err, out)
	}
	for _, want := range []string{"compiled", "barriers inserted", "whole-program", "Figure 13", "func Main.main"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tjc output missing %q:\n%s", want, out)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.tj")
	os.WriteFile(bad, []byte("class {"), 0o644)
	if _, err := exec.Command(bin, bad).CombinedOutput(); err == nil {
		t.Error("tjc accepted a syntax error")
	}
}

func TestAnomaliesTool(t *testing.T) {
	if testing.Short() {
		t.Skip("anomaly matrix is slow")
	}
	bin := buildTool(t, "anomalies")
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("anomalies: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "match the paper's Figure 6") {
		t.Errorf("anomalies output:\n%s", out)
	}
}

func TestStmbenchFig13(t *testing.T) {
	bin := buildTool(t, "stmbench")
	out, err := exec.Command(bin, "-fig", "13").CombinedOutput()
	if err != nil {
		t.Fatalf("stmbench: %v\n%s", err, out)
	}
	for _, want := range []string{"Figure 13", "tsp", "NAIT-TL"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stmbench output missing %q", want)
		}
	}
}
