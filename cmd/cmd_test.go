// Package cmd_test smoke-tests the command-line tools end to end: each
// binary is built once into a temp dir and exercised on a real program.
package cmd_test

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/conflict"
	"repro/internal/elide"
	"repro/internal/metrics"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/stmapi"
	"repro/internal/trace"
)

func buildTool(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

const sampleTJ = `
class Counter {
  var n: int;
  func work(iters: int) {
    for (var i = 0; i < iters; i++) { atomic { n = n + 1; } }
  }
}
class Main {
  static func main() {
    var c = new Counter();
    var t = spawn c.work(arg(0));
    c.work(arg(0));
    join(t);
    print(c.n);
  }
}`

func writeSample(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "sample.tj")
	if err := os.WriteFile(p, []byte(sampleTJ), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTjrunTool(t *testing.T) {
	bin := buildTool(t, "tjrun")
	src := writeSample(t)
	for _, mode := range []string{"synch", "weak-eager", "weak-lazy", "strong", "strong-dea", "strong-lazy"} {
		out, err := exec.Command(bin, "-mode", mode, src, "250").CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", mode, err, out)
		}
		if got := strings.TrimSpace(string(out)); got != "500" {
			t.Errorf("%s: output %q, want 500", mode, got)
		}
	}
	// Stats flag and bad inputs.
	out, err := exec.Command(bin, "-mode", "strong", "-stats", src, "10").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "txn commits") {
		t.Errorf("stats run: %v\n%s", err, out)
	}
	if _, err := exec.Command(bin, "-mode", "nope", src).CombinedOutput(); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := exec.Command(bin, src, "notanint").CombinedOutput(); err == nil {
		t.Error("bad argument accepted")
	}
}

func TestTjcTool(t *testing.T) {
	bin := buildTool(t, "tjc")
	src := writeSample(t)
	out, err := exec.Command(bin, "-O", "4", "-fig13", "-method", "Main.main", "-ir", src).CombinedOutput()
	if err != nil {
		t.Fatalf("tjc: %v\n%s", err, out)
	}
	for _, want := range []string{"compiled", "barriers inserted", "whole-program", "Figure 13", "func Main.main"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tjc output missing %q:\n%s", want, out)
		}
	}
	bad := filepath.Join(t.TempDir(), "bad.tj")
	os.WriteFile(bad, []byte("class {"), 0o644)
	if _, err := exec.Command(bin, bad).CombinedOutput(); err == nil {
		t.Error("tjc accepted a syntax error")
	}
}

func TestAnomaliesTool(t *testing.T) {
	if testing.Short() {
		t.Skip("anomaly matrix is slow")
	}
	bin := buildTool(t, "anomalies")
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("anomalies: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "match the paper's Figure 6") {
		t.Errorf("anomalies output:\n%s", out)
	}
}

// TestStmtopTool serves a metrics registry from the test process and points
// a freshly built stmtop at it: registry → HTTP → CLI rendering end to end,
// without racing against a benchmark's lifetime.
func TestStmtopTool(t *testing.T) {
	stmtop := buildTool(t, "stmtop")

	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "TopCell",
		Fields: []objmodel.Field{{Name: "n"}},
	})
	o := h.New(cls)
	rt := stm.New(h, stm.Config{})
	rt.SetTracer(trace.New(trace.Config{ShardCapacity: 256}))
	for i := 0; i < 25; i++ {
		if err := rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(o, 0, tx.Read(o, 0)+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// One deterministic conflict so the hotspot table has an entry: a
	// competing committed write between two reads dooms the first attempt.
	attempt := 0
	if err := rt.Atomic(nil, func(tx *stm.Txn) error {
		attempt++
		_ = tx.Read(o, 0)
		if attempt == 1 {
			done := make(chan error, 1)
			go func() {
				done <- rt.Atomic(nil, func(tx2 *stm.Txn) error {
					tx2.Write(o, 0, tx2.Read(o, 0)+1)
					return nil
				})
			}()
			if err := <-done; err != nil {
				t.Error(err)
			}
			_ = tx.Read(o, 0)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.RegisterSTM("cmdtest/eager", rt)
	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	out, err := exec.Command(stmtop, "-once", "-addr", srv.Addr).CombinedOutput()
	if err != nil {
		t.Fatalf("stmtop: %v\n%s", err, out)
	}
	for _, want := range []string{"RUNTIME", "cmdtest/eager", "eager", "26", "commit latency", "hot objects"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stmtop output missing %q:\n%s", want, out)
		}
	}
	// Polling mode against a live endpoint: two frames, then exit.
	out, err = exec.Command(stmtop, "-addr", srv.Addr, "-n", "2", "-interval", "50ms").CombinedOutput()
	if err != nil {
		t.Fatalf("stmtop -n 2: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "commits/s") {
		t.Errorf("polling frame missing rate columns:\n%s", out)
	}

	// An unreachable endpoint must fail loudly, not hang.
	if out, err := exec.Command(stmtop, "-once", "-addr", "127.0.0.1:1").CombinedOutput(); err == nil {
		t.Errorf("stmtop succeeded against a dead endpoint:\n%s", out)
	}
}

// TestStmbenchTraceJSON runs the parallel sweep at a tiny scale with
// tracing and a metrics endpoint enabled, checking that stdout stays a
// machine-readable JSON array (with the new abort/retry counts) and the
// trace summary lands on stderr.
func TestStmbenchTraceJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sweep is slow")
	}
	stmbench := buildTool(t, "stmbench")

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	bench := exec.Command(stmbench, "-fig", "par", "-json", "-trace",
		"-metrics-addr", addr, "-partxns", "2000", "-maxthreads", "2")
	var benchOut, benchErr bytes.Buffer
	bench.Stdout, bench.Stderr = &benchOut, &benchErr
	if err := bench.Run(); err != nil {
		t.Fatalf("stmbench: %v\nstderr: %s", err, benchErr.String())
	}
	var results []map[string]any
	if err := json.Unmarshal(benchOut.Bytes(), &results); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, benchOut.String())
	}
	if len(results) == 0 {
		t.Fatal("empty parallel sweep results")
	}
	for _, key := range []string{"commits", "aborts", "retries", "starts"} {
		if _, ok := results[0][key]; !ok {
			t.Errorf("JSON result missing %q: %v", key, results[0])
		}
	}
	for _, want := range []string{"serving http://", "trace:", "commit latency"} {
		if !strings.Contains(benchErr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, benchErr.String())
		}
	}
}

// TestStmtraceTool drives the flight-recorder pipeline end to end: a
// deterministic opposed-writer conflict (timestamp policy, so the younger
// writer self-aborts) is traced in-process, dumped with trace.WriteDumpFile,
// and the built stmtrace binary exports and analyzes the dump. The Perfetto
// output is schema-checked: every event carries ph/pid/ts, slices pair with
// lanes, and at least one aborted-by flow ("s"/"f" pair with matching id)
// links the victim to its killer.
func TestStmtraceTool(t *testing.T) {
	bin := buildTool(t, "stmtrace")

	tr := trace.New(trace.Config{})
	h := objmodel.NewHeap()
	cls := h.MustDefineClass(objmodel.ClassSpec{
		Name:   "TraceCell",
		Fields: []objmodel.Field{{Name: "n"}},
	})
	hot := h.New(cls)
	rt := stm.New(h, stm.Config{CommonConfig: stmapi.CommonConfig{
		Handler:        &conflict.Timestamp{MaxSleep: 20 * time.Microsecond},
		SelfAbortAfter: 1 << 30,
	}})
	rt.SetTracer(tr)

	// The older transaction holds the record until the younger one has
	// lost at least one arbitration (timestamp: younger self-aborts), then
	// commits so both finish.
	held := make(chan struct{})
	release := make(chan struct{})
	var onceHeld, onceRelease sync.Once
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := rt.Atomic(nil, func(tx *stm.Txn) error {
			tx.Write(hot, 0, 1)
			onceHeld.Do(func() { close(held) })
			<-release
			return nil
		}); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		<-held
		entries := 0
		if err := rt.Atomic(nil, func(tx *stm.Txn) error {
			entries++
			if entries > 1 {
				// Already aborted at least once; let the holder commit.
				onceRelease.Do(func() { close(release) })
			}
			tx.Write(hot, 0, 2)
			return nil
		}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	dump := filepath.Join(t.TempDir(), "litmus.trace.json")
	if err := trace.WriteDumpFile(dump, tr.DumpState()); err != nil {
		t.Fatal(err)
	}

	// Perfetto export: valid Chrome trace-event JSON with an aborted-by flow.
	perfOut := filepath.Join(t.TempDir(), "litmus.perfetto.json")
	if out, err := exec.Command(bin, "export", "-perfetto", "-o", perfOut, dump).CombinedOutput(); err != nil {
		t.Fatalf("stmtrace export -perfetto: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(perfOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto export has no traceEvents")
	}
	slices, flowStarts, flowEnds := 0, map[any]string{}, map[any]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("trace event missing ph: %v", ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("trace event missing pid: %v", ev)
		}
		switch ph {
		case "X":
			slices++
			for _, key := range []string{"ts", "dur", "tid", "name"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("slice missing %q: %v", key, ev)
				}
			}
		case "s":
			flowStarts[ev["id"]], _ = ev["name"].(string)
		case "f":
			flowEnds[ev["id"]] = true
		}
	}
	if slices < 3 {
		t.Errorf("want >= 3 attempt slices (holder + victim attempts), got %d", slices)
	}
	abortedByFlows := 0
	for id, name := range flowStarts {
		if !flowEnds[id] {
			t.Errorf("flow %v has a start but no finish", id)
		}
		if name == "aborted-by" {
			abortedByFlows++
		}
	}
	if abortedByFlows == 0 {
		t.Fatalf("no aborted-by flow edges in perfetto export; flows = %v", flowStarts)
	}

	// DOT export names the conflict kinds on edges.
	dotOut, err := exec.Command(bin, "export", "-dot", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("stmtrace export -dot: %v\n%s", err, dotOut)
	}
	for _, want := range []string{"digraph conflicts", "aborted-by"} {
		if !strings.Contains(string(dotOut), want) {
			t.Errorf("dot output missing %q:\n%s", want, dotOut)
		}
	}

	// Starvation report: machine-readable, with the self-abort visible.
	starveOut, err := exec.Command(bin, "starve", "-json", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("stmtrace starve -json: %v\n%s", err, starveOut)
	}
	var rep struct {
		Transactions int              `json:"transactions"`
		Attempts     int              `json:"attempts"`
		Aborts       int              `json:"aborts"`
		MaxConsec    int              `json:"max_consec_aborts"`
		EdgeCounts   map[string]int64 `json:"edge_counts"`
	}
	if err := json.Unmarshal(starveOut, &rep); err != nil {
		t.Fatalf("starve -json output: %v\n%s", err, starveOut)
	}
	if rep.Transactions < 2 || rep.Aborts < 1 || rep.MaxConsec < 1 {
		t.Errorf("starve report misses the litmus shape: %+v", rep)
	}
	if rep.EdgeCounts["aborted-by"] == 0 {
		t.Errorf("starve report has no aborted-by edges: %v", rep.EdgeCounts)
	}

	// -max-consec below the observed streak must exit nonzero.
	if rep.MaxConsec > 0 {
		cmd := exec.Command(bin, "starve", "-json", "-max-consec", strconv.Itoa(rep.MaxConsec-1), dump)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("starve -max-consec %d should fail with streak %d:\n%s", rep.MaxConsec-1, rep.MaxConsec, out)
		}
	}

	// Error paths: missing file, conflicting flags.
	if _, err := exec.Command(bin, "export", "-perfetto", filepath.Join(t.TempDir(), "nope.json")).CombinedOutput(); err == nil {
		t.Error("export accepted a missing trace file")
	}
	if _, err := exec.Command(bin, "export", "-perfetto", "-dot", dump).CombinedOutput(); err == nil {
		t.Error("export accepted both -perfetto and -dot")
	}
}

func TestStmbenchFig13(t *testing.T) {
	bin := buildTool(t, "stmbench")
	out, err := exec.Command(bin, "-fig", "13").CombinedOutput()
	if err != nil {
		t.Fatalf("stmbench: %v\n%s", err, out)
	}
	for _, want := range []string{"Figure 13", "tsp", "NAIT-TL"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stmbench output missing %q", want)
		}
	}
}

// noTxnTJ has no atomic blocks at all, so NAIT proves every
// non-transactional barrier removable — the canonical -werror trigger
// when compiled below -O4.
const noTxnTJ = `
class C { var f: int; }
class Main {
  static func main() {
    var c = new C();
    c.f = 41;
    print(c.f + 1);
  }
}`

func TestTjcWerror(t *testing.T) {
	bin := buildTool(t, "tjc")
	src := filepath.Join(t.TempDir(), "notxn.tj")
	if err := os.WriteFile(src, []byte(noTxnTJ), 0o644); err != nil {
		t.Fatal(err)
	}
	// Below -O4 the proven-removable barriers are still in place: fail.
	out, err := exec.Command(bin, "-O", "0", "-werror", src).CombinedOutput()
	if err == nil {
		t.Fatalf("tjc -O 0 -werror accepted removable-but-kept barriers:\n%s", out)
	}
	if !strings.Contains(string(out), "NAIT∪TL prove") || !strings.Contains(string(out), "-O4") {
		t.Errorf("tjc -werror diagnostic missing explanation:\n%s", out)
	}
	// At -O4 the removals are applied, so the same program passes.
	if out, err := exec.Command(bin, "-O", "4", "-werror", src).CombinedOutput(); err != nil {
		t.Fatalf("tjc -O 4 -werror: %v\n%s", err, out)
	}
	// A program whose barriers are all *needed* passes at every level.
	if out, err := exec.Command(bin, "-O", "0", "-werror", writeSample(t)).CombinedOutput(); err != nil {
		t.Fatalf("tjc -O 0 -werror on transactional sample: %v\n%s", err, out)
	}
}

func TestStmvetTool(t *testing.T) {
	bin := buildTool(t, "stmvet")
	// The suite must run clean over the whole repository (the dogfooded
	// state) — both standalone and through the go vet vettool protocol.
	out, err := exec.Command(bin, "-C", "..", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("stmvet ./... found issues: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./cmd/...", "./examples/...")
	vet.Dir = ".."
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=stmvet: %v\n%s", err, out)
	}
	list, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("stmvet -list: %v\n%s", err, list)
	}
	for _, pass := range []string{"txnescape", "nakedaccess", "sideeffect", "retrymisuse", "ctxmisuse", "privatization"} {
		if !strings.Contains(string(list), pass) {
			t.Errorf("stmvet -list missing %s:\n%s", pass, list)
		}
	}
	if _, err := exec.Command(bin, "-passes", "nosuchpass", "./...").CombinedOutput(); err == nil {
		t.Error("stmvet accepted an unknown pass name")
	}
}

func TestStmvetIncludeTestsAndJSON(t *testing.T) {
	bin := buildTool(t, "stmvet")
	// The repo is clean by default, but its own test files deliberately
	// violate the discipline (naked probes, in-body channel handoffs) —
	// -include-tests must surface them.
	out, err := exec.Command(bin, "-C", "..", "-include-tests", "./internal/stm/").CombinedOutput()
	if err == nil {
		t.Errorf("stmvet -include-tests found nothing in internal/stm's test files:\n%s", out)
	}
	if !strings.Contains(string(out), "_test.go") {
		t.Errorf("-include-tests diagnostics name no test file:\n%s", out)
	}
	// -json: machine-readable diagnostics on stdout; a clean run is [].
	jsOut, err := exec.Command(bin, "-C", "..", "-json", "./internal/elide/").Output()
	if err != nil {
		t.Fatalf("stmvet -json on a clean package: %v", err)
	}
	var diags []map[string]any
	if err := json.Unmarshal(jsOut, &diags); err != nil {
		t.Fatalf("stmvet -json output not JSON: %v\n%s", err, jsOut)
	}
	if len(diags) != 0 {
		t.Errorf("clean package produced %d JSON diagnostics", len(diags))
	}
	// Dirty run: entries carry the stable schema.
	jsCmd := exec.Command(bin, "-C", "..", "-json", "-include-tests", "./internal/stm/")
	jsOut, _ = jsCmd.Output() // exits 1: findings expected
	if err := json.Unmarshal(jsOut, &diags); err != nil || len(diags) == 0 {
		t.Fatalf("stmvet -json dirty run: err=%v, %d diags\n%s", err, len(diags), jsOut)
	}
	for _, k := range []string{"pass", "file", "line", "message"} {
		if _, ok := diags[0][k]; !ok {
			t.Errorf("JSON diagnostic missing %q: %v", k, diags[0])
		}
	}
}

func TestStmvetElide(t *testing.T) {
	bin := buildTool(t, "stmvet")
	manifest := filepath.Join(t.TempDir(), "elide_manifest.json")
	out, err := exec.Command(bin, "elide", "-C", "..", "-o", manifest,
		"./internal/vetstm/interproc/testdata/handoff").CombinedOutput()
	if err != nil {
		t.Fatalf("stmvet elide: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "elidable") {
		t.Errorf("elide summary missing stats:\n%s", out)
	}
	m, err := elide.ReadFile(manifest)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	if m.Tool != "stmvet elide" || m.Module != "repro" {
		t.Errorf("manifest header = tool %q module %q", m.Tool, m.Module)
	}
	classes := make(map[string]int)
	for _, s := range m.Sites {
		classes[s.Class]++
	}
	for _, want := range []string{elide.ClassNAIT, elide.ClassNAITTL, elide.ClassTL, elide.ClassMixed} {
		if classes[want] == 0 {
			t.Errorf("manifest has no %q site: %v", want, classes)
		}
	}
}
