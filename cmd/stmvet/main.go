// Command stmvet runs the vetstm static-analysis suite — the isolation
// and ordering discipline the paper enforces with compiler barriers,
// applied to Go code that embeds the STM libraries directly.
//
// Standalone:
//
//	stmvet ./...                         # analyze packages in the module
//	stmvet -passes sideeffect,ctxmisuse ./cmd/... ./examples/...
//	stmvet -include-tests ./...          # opt _test.go files in
//	stmvet -json ./...                   # machine-readable diagnostics
//
// Whole-program barrier elision (the NAIT/TL analyses over the Go
// embedding) emits a manifest internal/objmodel can load:
//
//	stmvet elide -o elide_manifest.json ./internal/workloads/...
//
// As a go vet backend (the unitchecker protocol: go vet compiles each
// package, hands the tool a .cfg with sources and export data, and relays
// its diagnostics):
//
//	go vet -vettool=$(which stmvet) ./...
//
// Exit status is 1 when any diagnostic is reported. Findings can be
// suppressed with `//stmvet:ignore <pass>` comments (see package vetstm).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/vetstm"
	"repro/internal/vetstm/interproc"
	"repro/internal/vetstm/vetload"
)

func main() {
	// The go vet handshake probes come before normal flag parsing.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V="):
			handshake(os.Args[1])
			return
		case os.Args[1] == "-flags":
			// No tool-specific flags are exposed through go vet; pass
			// selection happens via standalone mode or ignore comments.
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(unitcheck(os.Args[1]))
		}
	}
	if len(os.Args) > 1 && os.Args[1] == "elide" {
		os.Exit(runElide(os.Args[2:]))
	}
	passSpec := flag.String("passes", "", "comma-separated pass subset (default: all)")
	list := flag.Bool("list", false, "list available passes and exit")
	dir := flag.String("C", ".", "directory to resolve patterns in")
	includeTests := flag.Bool("include-tests", false, "analyze _test.go files too (default: exempt)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stmvet [-passes p1,p2] [-C dir] [-include-tests] [-json] [packages]\n")
		fmt.Fprintf(os.Stderr, "       stmvet elide [-o manifest.json] [-hot N] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range vetstm.All() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := vetstm.ByName(*passSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := vetload.ModuleDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	load := vetload.Load
	if *includeTests {
		load = vetload.LoadTests
	}
	pkgs, err := load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var diags []vetstm.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, vetstm.RunTests(pkg, analyzers, *includeTests)...)
	}
	if *jsonOut {
		if err := writeJSONDiags(os.Stdout, diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "stmvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiag is the stable machine-readable diagnostic schema for -json.
type jsonDiag struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func writeJSONDiags(w io.Writer, diags []vetstm.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Pass:    d.Pass,
			File:    d.Position.Filename,
			Line:    d.Position.Line,
			Column:  d.Position.Column,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// runElide implements `stmvet elide`: the whole-program NAIT/TL analyses
// over the listed packages, emitting the barrier-elision manifest.
func runElide(args []string) int {
	fs := flag.NewFlagSet("stmvet elide", flag.ExitOnError)
	out := fs.String("o", "elide_manifest.json", "manifest output path ('-' for stdout)")
	dir := fs.String("C", ".", "directory to resolve patterns in")
	hot := fs.Int("hot", 0, "distinct-access threshold for hot-site granularity hints (0: default)")
	verbose := fs.Bool("v", false, "print per-site classifications")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stmvet elide [-o manifest.json] [-hot N] [-v] [packages]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := vetload.ModuleDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := vetload.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := interproc.Analyze(pkgs, interproc.Options{HotThreshold: *hot, Tool: "stmvet elide"})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res.Manifest.Module = modulePath(root)
	if *verbose {
		for _, si := range res.Sites {
			fmt.Fprintf(os.Stderr, "%-24s %-8s %s (%s)\n",
				fmt.Sprintf("%s:%d", si.File, si.Line), si.Class, si.Func, si.Reason)
		}
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr,
		"stmvet elide: %d package(s), %d function(s) (%d txn-reachable), %d site(s), %d elidable\n",
		st.Packages, st.Functions, st.TxnReachable, st.Sites, st.Elidable)
	if *out == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Manifest); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		return 0
	}
	if err := res.Manifest.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "stmvet elide: wrote %s\n", *out)
	return 0
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) string {
	data, err := os.ReadFile(root + "/go.mod")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
// handshake answers `stmvet -V=full`, which cmd/go uses to fingerprint
// the tool for its action cache. The content hash of the binary keys the
// cache, so rebuilding stmvet invalidates stale vet results.
func handshake(arg string) {
	name := "stmvet"
	if arg != "-V=full" {
		fmt.Printf("%s version devel\n", name)
		return
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// vetCfg is the JSON configuration cmd/go hands a -vettool for each
// package (the unitchecker protocol).
type vetCfg struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "stmvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// stmvet exports no facts, but cmd/go expects the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}
	resolve := func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	tpkg, info, err := vetload.Check(cfg.ImportPath, fset, files, resolve)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "stmvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &vetstm.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags := vetstm.Run(pkg, vetstm.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
