// Command stmvet runs the vetstm static-analysis suite — the isolation
// and ordering discipline the paper enforces with compiler barriers,
// applied to Go code that embeds the STM libraries directly.
//
// Standalone:
//
//	stmvet ./...                         # analyze packages in the module
//	stmvet -passes sideeffect,ctxmisuse ./cmd/... ./examples/...
//
// As a go vet backend (the unitchecker protocol: go vet compiles each
// package, hands the tool a .cfg with sources and export data, and relays
// its diagnostics):
//
//	go vet -vettool=$(which stmvet) ./...
//
// Exit status is 1 when any diagnostic is reported. Findings can be
// suppressed with `//stmvet:ignore <pass>` comments (see package vetstm).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/vetstm"
	"repro/internal/vetstm/vetload"
)

func main() {
	// The go vet handshake probes come before normal flag parsing.
	if len(os.Args) == 2 {
		switch {
		case strings.HasPrefix(os.Args[1], "-V="):
			handshake(os.Args[1])
			return
		case os.Args[1] == "-flags":
			// No tool-specific flags are exposed through go vet; pass
			// selection happens via standalone mode or ignore comments.
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(unitcheck(os.Args[1]))
		}
	}
	passSpec := flag.String("passes", "", "comma-separated pass subset (default: all)")
	list := flag.Bool("list", false, "list available passes and exit")
	dir := flag.String("C", ".", "directory to resolve patterns in")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stmvet [-passes p1,p2] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range vetstm.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := vetstm.ByName(*passSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := vetload.ModuleDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := vetload.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range vetstm.Run(pkg, analyzers) {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "stmvet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

// handshake answers `stmvet -V=full`, which cmd/go uses to fingerprint
// the tool for its action cache. The content hash of the binary keys the
// cache, so rebuilding stmvet invalidates stale vet results.
func handshake(arg string) {
	name := "stmvet"
	if arg != "-V=full" {
		fmt.Printf("%s version devel\n", name)
		return
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// vetCfg is the JSON configuration cmd/go hands a -vettool for each
// package (the unitchecker protocol).
type vetCfg struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetCfg
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "stmvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// stmvet exports no facts, but cmd/go expects the output file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		files = append(files, f)
	}
	resolve := func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return f, nil
	}
	tpkg, info, err := vetload.Check(cfg.ImportPath, fset, files, resolve)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "stmvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &vetstm.Package{PkgPath: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags := vetstm.Run(pkg, vetstm.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
