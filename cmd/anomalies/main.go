// Command anomalies reproduces Figure 6 of the paper: it executes the
// Section 2 litmus programs (non-repeatable reads, lost updates, dirty
// reads, speculative and granular variants, and the lazy-versioning memory
// inconsistencies) under each execution regime and prints the observed
// anomaly matrix next to the paper's expectations.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/litmus"
)

func main() {
	verbose := flag.Bool("v", false, "describe each anomaly program")
	flag.Parse()

	if *verbose {
		for _, p := range litmus.Programs() {
			fmt.Printf("%-6s (Figure %-5s %s): %s\n", p.ID, p.Figure, p.Row, p.Description)
		}
		fmt.Println()
	}

	results := litmus.RunAll(litmus.AllModes)
	fmt.Println("Observed anomaly matrix (compare to the paper's Figure 6):")
	fmt.Print(litmus.FormatMatrix(results, litmus.AllModes))
	if ok, mismatch := litmus.Matches(results, litmus.AllModes); !ok {
		fmt.Printf("\nMISMATCH vs the paper: %s\n", mismatch)
		os.Exit(1)
	}
	fmt.Println("\nAll observations match the paper's Figure 6;")
	fmt.Println("the strong and strong-lazy columns are anomaly-free.")
}
