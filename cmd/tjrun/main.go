// Command tjrun compiles and executes a TJ program under a chosen
// atomicity regime.
//
// Usage:
//
//	tjrun [-mode regime] [-O level] [-g granularity] [-seed n] file.tj [args...]
//
// Regimes: synch (atomic blocks take one global lock), weak-eager,
// weak-lazy, strong (the paper's system), strong-dea, strong-lazy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/opt"
	"repro/internal/tj"
	"repro/internal/vm"
)

func modeFor(name string) (vm.Mode, error) {
	switch name {
	case "synch":
		return vm.Mode{Sync: vm.SyncLock}, nil
	case "weak-eager":
		return vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager}, nil
	case "weak-lazy":
		return vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Lazy}, nil
	case "strong":
		return vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true}, nil
	case "strong-dea":
		return vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, DEA: true}, nil
	case "strong-lazy":
		return vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Lazy, Strong: true}, nil
	}
	return vm.Mode{}, fmt.Errorf("unknown mode %q", name)
}

func main() {
	modeName := flag.String("mode", "strong", "execution regime: synch, weak-eager, weak-lazy, strong, strong-dea, strong-lazy")
	level := flag.Int("O", 4, "optimization level 0..4")
	gran := flag.Int("g", 1, "version-management granularity in slots")
	seed := flag.Int64("seed", 1, "rand() seed")
	stats := flag.Bool("stats", false, "print VM statistics after the run")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: tjrun [flags] file.tj [args...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mode, err := modeFor(*modeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mode.Granularity = *gran
	mode.Seed = *seed
	for _, a := range flag.Args()[1:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad argument %q: %v\n", a, err)
			os.Exit(2)
		}
		mode.Args = append(mode.Args, v)
	}
	prog, _, err := tj.CompileLevel(string(src), opt.Level(*level), *gran)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m, err := vm.New(prog, mode, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := m.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "instructions: %d\n", m.Executed.Load())
		fmt.Fprintf(os.Stderr, "txn commits: %d aborts: %d retries: %d\n",
			m.Eager.Stats.Commits.Load()+m.Lazy.Stats.Commits.Load(),
			m.Eager.Stats.Aborts.Load()+m.Lazy.Stats.Aborts.Load(),
			m.Eager.Stats.UserRetries.Load())
	}
}
