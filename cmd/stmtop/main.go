// Command stmtop is "top" for the STM runtimes: it polls a metrics
// endpoint (served by internal/metrics — e.g. stmbench -metrics-addr, or
// any program embedding metrics.Registry) and renders a live per-runtime
// view of commit/abort rates, access rates, the hottest objects, and
// commit-latency percentiles.
//
//	stmtop -addr localhost:9190               # refresh every second
//	stmtop -addr localhost:9190 -interval 250ms
//	stmtop -addr localhost:9190 -once         # one snapshot, no screen control
//
// Rates are computed from consecutive snapshots; the first frame of a
// polling session shows absolute totals instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/metrics"
)

func main() {
	addr := flag.String("addr", "localhost:9190", "metrics endpoint host:port")
	interval := flag.Duration("interval", time.Second, "poll interval")
	iterations := flag.Int("n", 0, "number of polls (0 = until interrupted)")
	once := flag.Bool("once", false, "fetch a single snapshot, print, exit")
	topN := flag.Int("top", 5, "hotspot objects shown per runtime")
	flag.Parse()

	url := "http://" + *addr + "/metrics"
	if *once {
		cur, err := fetch(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmtop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(render(nil, cur, *topN))
		return
	}

	var prev []metrics.RuntimeSnapshot
	for i := 0; *iterations == 0 || i < *iterations; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetch(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stmtop: %v\n", err)
			os.Exit(1)
		}
		// ANSI home+clear keeps the view in place like top(1).
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("stmtop — %s — %s\n\n", *addr, time.Now().Format("15:04:05"))
		fmt.Print(render(prev, cur, *topN))
		prev = cur
	}
}

func fetch(url string) ([]metrics.RuntimeSnapshot, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var snaps []metrics.RuntimeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", url, err)
	}
	return snaps, nil
}

// render formats the current snapshots; with a previous poll available the
// counter columns become per-second rates.
func render(prev, cur []metrics.RuntimeSnapshot, topN int) string {
	prevByName := make(map[string]metrics.RuntimeSnapshot, len(prev))
	for _, s := range prev {
		prevByName[s.Name] = s
	}
	var b strings.Builder
	unit := ""
	if prev != nil {
		unit = "/s"
	}
	fmt.Fprintf(&b, "%-18s %-6s %12s %12s %8s %12s %12s\n",
		"RUNTIME", "KIND", "commits"+unit, "aborts"+unit, "abort%", "reads"+unit, "writes"+unit)
	for _, s := range cur {
		commits := counter(s, prevByName, "commits")
		aborts := counter(s, prevByName, "aborts")
		reads := counter(s, prevByName, "txn_reads")
		writes := counter(s, prevByName, "txn_writes")
		abortPct := 0.0
		if commits+aborts > 0 {
			abortPct = 100 * aborts / (commits + aborts)
		}
		fmt.Fprintf(&b, "%-18s %-6s %12s %12s %7.1f%% %12s %12s\n",
			s.Name, s.Kind, big(commits), big(aborts), abortPct, big(reads), big(writes))
		// Validation line: shown once the commit clock or adaptive
		// granularity has done anything, so walk-only runtimes keep the
		// compact view.
		fast := s.Stats["fastpath_validations"]
		walks := s.Stats["fallback_walks"]
		promos := s.Stats["gran_promotions"]
		demos := s.Stats["gran_demotions"]
		if fast > 0 || promos > 0 || demos > 0 {
			hit := 0.0
			if fast+walks > 0 {
				hit = 100 * float64(fast) / float64(fast+walks)
			}
			fmt.Fprintf(&b, "  validation: clock fast-path %.1f%% (%s fast, %s walks)  promoted %d  demoted %d\n",
				hit, big(float64(fast)), big(float64(walks)), promos, demos)
		}
		// Multi-version line: shown once the snapshot read path or the
		// version GC has done anything (i.e. for mvstm-backed runtimes).
		snaps := counter(s, prevByName, "snapshot_reads")
		roTxns := s.Stats["read_only_txns"]
		installed := s.Stats["versions_installed"]
		if snaps > 0 || roTxns > 0 || installed > 0 {
			fmt.Fprintf(&b, "  multiversion: snapshot reads%s %s  read-only txns %d (aborted %d)  versions live %d (gc'd %d)  watermark lag %d\n",
				unit, big(snaps), roTxns, s.Stats["read_only_aborts"],
				s.Stats["versions_live"], s.Stats["versions_gcd"], s.Stats["watermark_lag"])
		}
		// Robustness line: shown only once recovery or irrevocability has
		// fired, so quiet runtimes keep the compact classic view.
		steals := counter(s, prevByName, "reaper_steals")
		escal := counter(s, prevByName, "escalations")
		if steals > 0 || escal > 0 || s.Stats["irrevocable_txns"] > 0 {
			fmt.Fprintf(&b, "  recovery: steals%s %s  escalations%s %s  irrevocable %d",
				unit, big(steals), unit, big(escal), s.Stats["irrevocable_txns"])
			if n := s.Stats["irrevocable_txns"]; n > 0 {
				fmt.Fprintf(&b, " (avg hold %s)", ns(s.Stats["irrevocable_ns"]/n))
			}
			b.WriteByte('\n')
		}
		// Durability line: present only for durable.Store-backed runtimes
		// (metrics.Registry.RegisterStore).
		if d := s.Durability; d != nil {
			batch := "-"
			if d.Fsyncs > 0 {
				batch = fmt.Sprintf("%.1f (max %d)", d.GroupCommitMean, d.GroupCommitBatch)
			}
			fmt.Fprintf(&b, "  durability: epoch %d  wal appends %s  fsyncs %s  batch %s  snapshot age %s  replayed %d",
				d.Epoch, big(float64(d.WALAppends)), big(float64(d.Fsyncs)), batch,
				ns(d.SnapshotAgeNs), d.RecoveryReplays)
			if d.CheckpointSkips > 0 {
				fmt.Fprintf(&b, "  ckpt skips %d", d.CheckpointSkips)
			}
			b.WriteByte('\n')
		}
		// Causal line: present only when a flight recorder is attached to
		// the runtime's tracer (trace.Tracer sink = causal.Recorder).
		if c := s.Causal; c != nil {
			fmt.Fprintf(&b, "  causal: waits %d  chain %d  wasted %.1f%%  max consec aborts %d",
				c.ActiveWaits, c.LongestChain, c.WastedWorkPct, c.MaxConsecutiveAborts)
			if c.MaxConsecutiveTxn != 0 {
				fmt.Fprintf(&b, " (txn %d)", c.MaxConsecutiveTxn)
			}
			fmt.Fprintf(&b, "  attempts %d  edges %d", c.Attempts, c.Edges)
			if c.Extensions > 0 {
				fmt.Fprintf(&b, "  extensions %d", c.Extensions)
			}
			b.WriteByte('\n')
		}
		if t := s.Trace; t != nil {
			if t.Dropped > 0 {
				fmt.Fprintf(&b, "  trace drops: %s of %s events (per shard: %s)\n",
					big(float64(t.Dropped)), big(float64(t.Events)), shardDrops(t.DroppedByShard))
			}
			cl := t.CommitLatency
			fmt.Fprintf(&b, "  commit latency: p50 %s  p95 %s  p99 %s  (n=%d)",
				ns(cl.P50Ns), ns(cl.P95Ns), ns(cl.P99Ns), cl.Count)
			if t.AbortToRetry.Count > 0 {
				fmt.Fprintf(&b, "   abort→retry p50 %s", ns(t.AbortToRetry.P50Ns))
			}
			if t.QuiesceWait.Count > 0 {
				fmt.Fprintf(&b, "   quiesce p50 %s", ns(t.QuiesceWait.P50Ns))
			}
			if t.IrrevocableHold.Count > 0 {
				fmt.Fprintf(&b, "   irrev hold p50 %s", ns(t.IrrevocableHold.P50Ns))
			}
			b.WriteByte('\n')
			if len(t.Hotspots) > 0 {
				n := topN
				if n > len(t.Hotspots) {
					n = len(t.Hotspots)
				}
				parts := make([]string, 0, n)
				for _, h := range t.Hotspots[:n] {
					parts = append(parts, fmt.Sprintf("#%d (%d aborts, %d conflicts)", h.Obj, h.Aborts, h.Conflicts))
				}
				fmt.Fprintf(&b, "  hot objects: %s\n", strings.Join(parts, ", "))
			}
		}
	}
	return b.String()
}

// shardDrops renders per-shard drop counts compactly ("0/0/12/0/…"),
// eliding trailing all-zero shards.
func shardDrops(byShard []int64) string {
	last := len(byShard)
	for last > 0 && byShard[last-1] == 0 {
		last--
	}
	if last == 0 {
		return "none"
	}
	parts := make([]string, last)
	for i := 0; i < last; i++ {
		parts[i] = fmt.Sprintf("%d", byShard[i])
	}
	return strings.Join(parts, "/")
}

// counter returns the named stat as a rate (per second against the
// previous poll) or, on the first frame, as the absolute total.
func counter(cur metrics.RuntimeSnapshot, prev map[string]metrics.RuntimeSnapshot, key string) float64 {
	v := float64(cur.Stats[key])
	p, ok := prev[cur.Name]
	if !ok {
		return v
	}
	dt := float64(cur.UnixNs-p.UnixNs) / 1e9
	if dt <= 0 {
		return 0
	}
	return (v - float64(p.Stats[key])) / dt
}

// big renders a count or rate compactly (1234567 -> "1.23M").
func big(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// ns renders a nanosecond figure with an adaptive unit.
func ns(v int64) string {
	d := time.Duration(v)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/1e3)
	default:
		return fmt.Sprintf("%dns", v)
	}
}
