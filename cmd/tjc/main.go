// Command tjc compiles a TJ source file through the barrier-inserting and
// barrier-optimizing pipeline and reports what the paper's JIT would do:
// the IR with per-access barrier annotations, the optimization report, and
// the whole-program NAIT/TL static counts (the per-program row of
// Figure 13).
//
// Usage:
//
//	tjc [-O level] [-g granularity] [-ir] [-method name] [-fig13] [-werror] file.tj
//
// With -werror, tjc exits nonzero when the whole-program analyses (NAIT ∪
// TL, the Figure 13 counts) prove non-transactional barriers removable
// that the chosen -O level leaves in place (any level below -O4, where
// Apply is off): CI can then treat an analysis regression — barriers that
// should be free but are still paid for — as a build failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/opt"
	"repro/internal/tj"
)

func main() {
	level := flag.Int("O", 4, "optimization level 0..4 (NoOpts..+WholeProgOpts)")
	gran := flag.Int("g", 1, "version-management granularity in slots (1 or 2)")
	showIR := flag.Bool("ir", false, "dump IR with barrier annotations")
	method := flag.String("method", "", "dump only this method (e.g. Main.main)")
	fig13 := flag.Bool("fig13", false, "print the program's Figure 13 static-count row")
	werror := flag.Bool("werror", false, "exit nonzero if NAIT∪TL prove barriers removable that this -O level leaves in place")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tjc [flags] file.tj")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *level < 0 || *level > 4 {
		fmt.Fprintln(os.Stderr, "tjc: -O must be 0..4")
		os.Exit(2)
	}
	prog, rep, err := tj.CompileLevel(string(src), opt.Level(*level), *gran)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("compiled %d methods at %v (granularity %d)\n",
		len(prog.Methods), opt.Level(*level), *gran)
	fmt.Printf("non-txn barriers inserted: %d reads, %d writes\n", rep.TotalReads, rep.TotalWrites)
	fmt.Printf("removed: %d immutable, %d escape; aggregated: %d accesses in %d groups\n",
		rep.RemovedImmutable, rep.RemovedEscape, rep.AggregatedAccesses, rep.AggregateGroups)
	if rep.WholeProg != nil {
		wp := rep.WholeProg
		fmt.Printf("whole-program: NAIT removed %d/%d reads, %d/%d writes; TL %d/%d reads, %d/%d writes; init-self exempt %d\n",
			wp.NAITReads, wp.TotalReads, wp.NAITWrites, wp.TotalWrites,
			wp.TLReads, wp.TotalReads, wp.TLWrites, wp.TotalWrites, wp.InitSelf)
	}
	var r *analysis.Report
	if *fig13 || *werror {
		frontend, err := tj.Frontend(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r = analysis.Run(frontend, analysis.Options{Granularity: *gran})
	}
	if *fig13 {
		fmt.Println("\nFigure 13 row (reachable non-transactional barriers):")
		fmt.Print(r.String())
	}
	if *showIR || *method != "" {
		fmt.Println()
		for _, m := range prog.Methods {
			if *method != "" && m.Name != *method {
				continue
			}
			fmt.Println(m.String())
		}
	}
	if *werror && opt.Level(*level) < opt.O4WholeProg {
		if removable := r.UnionReads + r.UnionWrites; removable > 0 {
			fmt.Fprintf(os.Stderr,
				"tjc: -werror: NAIT∪TL prove %d non-transactional barriers removable (%d reads, %d writes) but %v does not apply whole-program removal — compile at -O4 or fix the regression\n",
				removable, r.UnionReads, r.UnionWrites, opt.Level(*level))
			os.Exit(1)
		}
	}
}
