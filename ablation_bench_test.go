package repro

import (
	"testing"

	"repro/internal/opt"
	"repro/internal/tj"
	"repro/internal/vm"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// Section 5.2 transactional read-barrier elimination, quiescence versus
// isolation barriers as privatization mechanisms (Section 3.4), and the
// cost of version-management granularity.

// ablationReadHeavy: transactions repeatedly sum an immutable tree and
// bump one counter — the best case for the Section 5.2 extension.
const ablationReadHeavy = `
class Node { var v: int; var l: Node; var r: Node; }
class Main {
  static var root: Node;
  static var hits: int;
  static func build(d: int): Node {
    var n = new Node();
    n.v = d;
    if (d > 0) { n.l = Main.build(d - 1); n.r = Main.build(d - 1); }
    return n;
  }
  static func sum(n: Node): int {
    if (n == null) { return 0; }
    return n.v + Main.sum(n.l) + Main.sum(n.r);
  }
  static func main() {
    root = Main.build(arg(0));
    for (var i = 0; i < arg(1); i++) {
      atomic {
        var s = Main.sum(root);
        hits = hits + s % 7 + 1;
      }
    }
    print(hits);
  }
}`

func runProg(b *testing.B, src string, o opt.Options, mode vm.Mode) {
	b.Helper()
	prog, _, err := tj.Compile(src, o)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := vm.New(prog, mode, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTxnReadElim compares weak-atomicity transactions with
// the full open-for-read protocol against the Section 5.2 extension that
// bypasses it for provably conflict-free loads.
func BenchmarkAblationTxnReadElim(b *testing.B) {
	args := []int64{7, 60}
	mode := vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Args: args}
	b.Run("OpenForRead", func(b *testing.B) {
		runProg(b, ablationReadHeavy, opt.Options{WholeProgram: true}, mode)
	})
	b.Run("DirectReads", func(b *testing.B) {
		runProg(b, ablationReadHeavy, opt.Options{TxnReadElim: true}, mode)
	})
}

// ablationPrivatize: the Figure 1 pattern as a throughput workload — a
// producer publishes items transactionally; the consumer privatizes each
// and then reads/writes it plainly. Safe either via isolation barriers
// (strong atomicity) or via commit-time quiescence (Section 3.4).
const ablationPrivatize = `
class Item { var a: int; var b: int; }
class Main {
  static var slot: Item;
  static func put(it: Item) {
    atomic {
      if (slot != null) { retry; }
      slot = it;
    }
  }
  static func take(): Item {
    var it: Item = null;
    atomic {
      if (slot == null) { retry; }
      it = slot;
      slot = null;
    }
    return it;
  }
  static func producer(n: int) {
    for (var i = 0; i < n; i++) {
      var it = new Item();
      it.a = i;
      it.b = i;
      Main.put(it);
    }
  }
  static func main() {
    var n = arg(0);
    var t = spawn Main.producer(n);
    var sum = 0;
    for (var got = 0; got < n; got++) {
      var it = Main.take();
      sum += it.a + it.b;  // privatized accesses
      it.a = 0;
    }
    join(t);
    print(sum);
  }
}`

// BenchmarkAblationPrivatization compares the two mechanisms the paper
// discusses for making privatization safe.
func BenchmarkAblationPrivatization(b *testing.B) {
	args := []int64{400}
	b.Run("StrongBarriers", func(b *testing.B) {
		runProg(b, ablationPrivatize, opt.FromLevel(opt.O2Aggregate, 1),
			vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Args: args})
	})
	b.Run("WeakQuiescence", func(b *testing.B) {
		runProg(b, ablationPrivatize, opt.FromLevel(opt.O0NoOpts, 1),
			vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Quiescence: true, Args: args})
	})
}

// ablationWriteHeavy: transactions write many adjacent fields; granularity
// 2 halves the number of undo-log entries at the cost of logging the
// neighbour slot.
const ablationWriteHeavy = `
class Row { var a: int; var b: int; var c: int; var d: int; }
class Main {
  static var rows: Row[];
  static func main() {
    var n = arg(0);
    rows = new Row[n];
    for (var i = 0; i < n; i++) { rows[i] = new Row(); }
    for (var it = 0; it < arg(1); it++) {
      atomic {
        for (var i = 0; i < n; i++) {
          var r = rows[i];
          r.a = r.a + 1;
          r.b = r.b + 2;
          r.c = r.c + 3;
          r.d = r.d + 4;
        }
      }
    }
    print(rows[0].a + rows[0].d);
  }
}`

// BenchmarkAblationGranularity measures the eager STM's undo-log
// granularity trade-off (Section 2.4 discusses its semantics; this is its
// cost side).
func BenchmarkAblationGranularity(b *testing.B) {
	args := []int64{64, 50}
	for _, g := range []int{1, 2} {
		name := "G1"
		if g == 2 {
			name = "G2"
		}
		b.Run(name, func(b *testing.B) {
			o := opt.FromLevel(opt.O0NoOpts, g)
			runProg(b, ablationWriteHeavy, o,
				vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Granularity: g, Args: args})
		})
	}
}
