// Quickstart: the strongly-atomic STM as a Go library.
//
// Two accounts are updated by transactional transfers while an auditor
// reads — and a meddler writes — the same fields with plain (but
// barriered) non-transactional accesses. Under strong atomicity the
// non-transactional side is isolated from transactions: no audit ever
// observes a torn transfer and no update is lost, even though half the
// accesses never enter an atomic block.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

func main() {
	sys := core.MustNewSystem(core.Config{Strong: true})

	account, err := sys.DefineClass("Account",
		core.Field{Name: "balance"},
		core.Field{Name: "version"},
	)
	if err != nil {
		panic(err)
	}
	a, b := sys.New(account), sys.New(account)
	sys.Write(a, 0, 1000) // seed through the barriered accessor (stmvet discipline)

	const (
		transfers = 5000
		meddles   = 5000
	)
	var torn int
	var wg sync.WaitGroup
	wg.Add(3)

	// Transactional transfers keep balance(a)+balance(b) invariant.
	go func() {
		defer wg.Done()
		for i := 0; i < transfers; i++ {
			_ = sys.Atomic(func(tx core.Tx) error {
				tx.Write(a, 0, tx.Read(a, 0)-1)
				tx.Write(b, 0, tx.Read(b, 0)+1)
				return nil
			})
		}
	}()

	// A non-transactional meddler increments both balances WITHOUT a
	// transaction. The Figure 9 write barriers make this safe: the
	// transactions above never lose these updates, and vice versa.
	go func() {
		defer wg.Done()
		for i := 0; i < meddles; i++ {
			sys.Write(a, 0, sys.Read(a, 0)+1)
		}
	}()

	// A transactional auditor checks the invariant. (The non-transactional
	// meddler shifts the total over time, so the auditor checks the
	// transfer invariant modulo the meddler's monotone additions.)
	go func() {
		defer wg.Done()
		prevTotal := int64(-1)
		for i := 0; i < 2000; i++ {
			var total int64
			_ = sys.Atomic(func(tx core.Tx) error {
				total = int64(tx.Read(a, 0)) + int64(tx.Read(b, 0))
				return nil
			})
			if total < 1000 || total > 1000+meddles {
				torn++
			}
			if prevTotal >= 0 && total < prevTotal {
				torn++ // the meddler only adds; the total may never shrink
			}
			prevTotal = total
		}
	}()

	wg.Wait()
	finalA, finalB := int64(sys.Read(a, 0)), int64(sys.Read(b, 0))
	fmt.Printf("final balances: a=%d b=%d (total %d)\n", finalA, finalB, finalA+finalB)
	fmt.Printf("expected total: %d\n", int64(1000+meddles))
	fmt.Printf("torn/inconsistent audits: %d\n", torn)
	if finalA+finalB != int64(1000+meddles) || torn != 0 {
		fmt.Println("FAILED: strong atomicity was violated")
		return
	}
	fmt.Println("OK: transactional and non-transactional accesses composed safely")
}
