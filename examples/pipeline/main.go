// Pipeline: transactional data structures composing under strong atomicity.
//
// Producers push work items through a bounded transactional queue (blocking
// via the STM's retry operation); workers pull items, do non-transactional
// "processing" on the privatized item object — safe because the system is
// strongly atomic — and record results into a transactional map, moving an
// item between structures in a single composed transaction where needed.
//
// Run: go run ./examples/pipeline
package main

import (
	"fmt"
	"sync"

	"repro/internal/containers"
	"repro/internal/core"
)

func main() {
	sys := core.MustNewSystem(core.Config{Strong: true, DEA: true})

	itemCls, err := sys.DefineClass("WorkItem",
		core.Field{Name: "id"}, core.Field{Name: "payload"}, core.Field{Name: "result"})
	if err != nil {
		panic(err)
	}
	queue, err := containers.NewQueue(sys, 8)
	if err != nil {
		panic(err)
	}
	results, err := containers.NewMap(sys, 32)
	if err != nil {
		panic(err)
	}

	const (
		producers = 2
		perP      = 150
		workers   = 3
		total     = producers * perP
	)

	// Items travel through the queue as heap references.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perP; i++ {
				it := sys.New(itemCls)
				id := int64(p*perP + i)
				it.StoreSlot(0, uint64(id))     // fresh & private: plain init
				it.StoreSlot(1, uint64(id*3+1)) // payload
				if err := queue.Put(int64(it.Ref())); err != nil {
					panic(err)
				}
			}
		}(p)
	}

	var processed sync.WaitGroup
	for w := 0; w < workers; w++ {
		processed.Add(1)
		go func() {
			defer processed.Done()
			for {
				ref, err := queue.Take()
				if err != nil {
					panic(err)
				}
				if ref < 0 { // poison pill
					return
				}
				it := sys.Deref(core.ObjRef(ref))
				// The item has been handed off: this worker owns it now.
				// Strong atomicity makes these plain reads/writes safe even
				// though the producer created it and a transaction moved it.
				payload := int64(sys.Read(it, 1))
				sys.Write(it, 2, uint64(payload*payload%997)) // "processing"
				// Record the result transactionally.
				id := int64(sys.Read(it, 0))
				res := int64(sys.Read(it, 2))
				if err := results.Put(id, res); err != nil {
					panic(err)
				}
			}
		}()
	}

	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := queue.Put(-1); err != nil {
			panic(err)
		}
	}
	processed.Wait()

	n, _ := results.Len()
	var checksum int64
	for id := int64(0); id < total; id++ {
		v, ok, _ := results.Get(id)
		if !ok {
			fmt.Printf("MISSING result for item %d\n", id)
			return
		}
		want := (id*3 + 1) * (id*3 + 1) % 997
		if v != want {
			fmt.Printf("WRONG result for item %d: %d != %d\n", id, v, want)
			return
		}
		checksum = (checksum + v) % 1000003
	}
	fmt.Printf("processed %d items through %d workers; results map has %d entries\n",
		total, workers, n)
	fmt.Printf("checksum %d — all results present and correct\n", checksum)
}
