// Privatization: the paper's Figure 1 as an executable experiment.
//
// Thread 1 atomically removes an item from a shared list and then reads
// its two fields OUTSIDE any transaction — the item is private now, so
// that should be safe, exactly as it is with locks. Thread 2 atomically
// increments both fields of the first item while it is still shared.
//
// With locks (and with strong atomicity) r1 == r2 always: either both
// increments happened before the privatization or neither did. Under a
// weakly-atomic lazy-versioning STM, Thread 2's write-back can still be
// in flight after its commit, so Thread 1 can read one field old and one
// field new (r1 != r2) — the paper's motivating bug. This program runs
// the idiom many times under each regime and counts violations.
//
// Run: go run ./examples/privatization
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/lazystm"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/strong"
)

// oneTrial runs Figure 1 once and reports whether r1 != r2 was observed.
// mode: "weak-lazy", "strong-lazy" (ordering barriers), or "strong-eager".
func oneTrial(mode string) bool {
	heap := objmodel.NewHeap()
	item := heap.MustDefineClass(objmodel.ClassSpec{
		Name:   "Item",
		Fields: []objmodel.Field{{Name: "val1"}, {Name: "val2"}},
	})
	list := heap.MustDefineClass(objmodel.ClassSpec{
		Name:   "List",
		Fields: []objmodel.Field{{Name: "head", IsRef: true}},
	})
	l := heap.New(list)
	it := heap.New(item)
	// Pre-publication init: no transaction has seen these objects yet, and
	// this example deliberately works at the raw layer to reproduce the
	// Figure 1 anomaly.
	//stmvet:ignore nakedaccess,privatization -- deliberately reproduces Figure 1: raw init before publication
	l.StoreSlot(0, uint64(it.Ref()))

	bars := strong.New(heap, false)

	// Widen the write-back window so the race is observable: after its
	// commit point, the lazy transaction announces itself and then holds
	// its write-back until Thread 1 has probed (bounded, so the strong
	// regimes — whose probes rightly block on the held record — make
	// progress once the window closes).
	gate := make(chan struct{})
	probed := make(chan struct{})
	var once sync.Once
	lrt := lazystm.New(heap, lazystm.Config{Hooks: lazystm.Hooks{
		OnAfterCommitPoint: func(tx *lazystm.Txn) {
			once.Do(func() { close(gate) })
			select {
			case <-probed:
			case <-time.After(2 * time.Millisecond):
			}
		},
	}})
	ert := stm.New(heap, stm.Config{})

	ntRead := func(o *objmodel.Object, slot int) uint64 {
		switch mode {
		case "strong-lazy":
			return bars.ReadOrdering(o, slot)
		case "strong-eager":
			return bars.Read(o, slot)
		default:
			return o.LoadSlot(slot)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // Thread 2: increment both fields of the shared item
		defer wg.Done()
		body := func(read func(*objmodel.Object, int) uint64, write func(*objmodel.Object, int, uint64), headRef uint64) {
			if headRef == 0 {
				return
			}
			o := heap.Get(objmodel.Ref(headRef))
			write(o, 0, read(o, 0)+1)
			write(o, 1, read(o, 1)+1)
		}
		if mode == "strong-eager" {
			_ = ert.Atomic(nil, func(tx *stm.Txn) error {
				body(tx.Read, tx.Write, tx.Read(l, 0))
				return nil
			})
			return
		}
		_ = lrt.Atomic(nil, func(tx *lazystm.Txn) error {
			body(tx.Read, tx.Write, tx.Read(l, 0))
			return nil
		})
	}()

	// Thread 1: wait for Thread 2 to commit, privatize, then read outside
	// any transaction — the Figure 1 idiom.
	if mode == "strong-eager" {
		// The eager runtime has no write-back window; no gate to wait on.
		wg.Wait()
	} else {
		<-gate
	}
	var ref uint64
	privatize := func() {
		if mode == "strong-eager" {
			_ = ert.Atomic(nil, func(tx *stm.Txn) error {
				ref = tx.Read(l, 0)
				tx.Write(l, 0, 0)
				return nil
			})
			return
		}
		_ = lrt.Atomic(nil, func(tx *lazystm.Txn) error {
			ref = tx.Read(l, 0)
			tx.Write(l, 0, 0)
			return nil
		})
	}
	privatize()
	o := heap.Get(objmodel.Ref(ref))
	r1 := ntRead(o, 0)
	close(probed) // the pending write-back lands between the two reads
	wg.Wait()
	r2 := ntRead(o, 1)
	// Thread 2 increments both fields atomically, so a consistent view has
	// r1 == r2 (either both incremented or neither). r1 != r2 means the
	// privatized reads raced with a committed transaction's write-back.
	return r1 != r2
}

func main() {
	const trials = 300
	fmt.Println("Figure 1 privatization idiom, many trials per regime:")
	for _, mode := range []string{"weak-lazy", "strong-lazy", "strong-eager"} {
		violations := 0
		for i := 0; i < trials; i++ {
			if oneTrial(mode) {
				violations++
			}
		}
		verdict := "SAFE"
		if violations > 0 {
			verdict = "r1 != r2 OBSERVED (isolation/ordering violated)"
		}
		fmt.Printf("  %-13s %4d/%d violations  -> %s\n", mode, violations, trials, verdict)
	}
	fmt.Println("\nThe weakly-atomic lazy STM exhibits the Figure 1 bug; the")
	fmt.Println("ordering read barriers of Section 3.3 (strong-lazy) and the")
	fmt.Println("eager strong-atomicity system eliminate it.")
}
