// Tsp: the paper's Figure 18 workload driven through the public API.
//
// The TJ program implements branch-and-bound traveling salesman: worker
// threads claim start cities from a shared counter and prune against a
// shared best bound that is READ outside transactions (a benign race the
// strong system must support) and UPDATED inside atomic blocks. This
// example compiles it at two optimization levels and runs it under weak
// and strong atomicity, showing that all regimes agree on the optimal tour
// and how many isolation barriers each configuration executes.
//
// Run: go run ./examples/tsp
package main

import (
	"fmt"
	"time"

	"repro/internal/opt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	w := workloads.Tsp()
	const (
		threads = 2
		cities  = 9
	)
	args := []int64{threads, cities, 1} // useTxn = 1

	type cfg struct {
		name  string
		level opt.Level
		mode  vm.Mode
	}
	configs := []cfg{
		{"weak atomicity", opt.O0NoOpts,
			vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Args: args, Seed: 7, CountBarriers: true}},
		{"strong, NoOpts", opt.O0NoOpts,
			vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, Args: args, Seed: 7, CountBarriers: true}},
		{"strong, +WholeProgOpts", opt.O4WholeProg,
			vm.Mode{Sync: vm.SyncSTM, Versioning: vm.Eager, Strong: true, DEA: true, Args: args, Seed: 7, CountBarriers: true}},
	}

	fmt.Printf("tsp: %d cities, %d threads\n\n", cities, threads)
	var tour string
	for _, c := range configs {
		prog, rep, err := w.Compile(c.level, 1)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		out, m, err := workloads.Run(prog, c.mode)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		barriers := int64(0)
		if m.Bar.Stats != nil {
			barriers = m.Bar.Stats.Reads.Load() + m.Bar.Stats.Writes.Load()
		}
		fmt.Printf("%-24s best tour %s  %8s  commits %5d aborts %3d  barriers %9d\n",
			c.name, out, elapsed.Round(time.Millisecond),
			m.Eager.Stats.Commits.Load(), m.Eager.Stats.Aborts.Load(), barriers)
		if c.level == opt.O4WholeProg && rep.WholeProg != nil {
			wp := rep.WholeProg
			fmt.Printf("%-24s NAIT removed %d of %d read barriers and %d of %d write barriers statically\n",
				"", wp.NAITReads, wp.TotalReads, wp.NAITWrites, wp.TotalWrites)
		}
		if tour == "" {
			tour = out
		} else if out != tour {
			fmt.Println("DISAGREEMENT between configurations!")
			return
		}
	}
	fmt.Println("\nall configurations found the same optimal tour; whole-program")
	fmt.Println("analysis removed the distance-matrix barriers (never accessed in")
	fmt.Println("a transaction) while keeping the shared-bound barriers.")
}
