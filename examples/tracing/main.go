// Tracing: find the contended object in a workload you didn't write —
// then reconstruct *why* each abort happened.
//
// Eight goroutines hammer a hundred transactional counters. The access
// pattern is skewed — most transactions also touch counter #0 — so that one
// object causes almost every conflict. With the tracer installed, the
// runtime attributes each abort to the object whose version moved, and the
// hotspot table names the culprit without any instrumentation in the
// workload itself. The same data is what `stmbench -metrics-addr` serves
// and `stmtop` renders live.
//
// A causal flight recorder rides along as the tracer's sink: it folds the
// event stream into a conflict DAG (attempt spans + typed causal edges),
// the structure behind `stmtrace starve` and the Perfetto/DOT exports. The
// example prints the starvation profile and writes the raw trace next to
// the binary so you can explore it offline:
//
//	go run ./examples/tracing
//	go run ./cmd/stmtrace export -perfetto tracing.trace.json > tracing.perfetto.json
//	# open tracing.perfetto.json at https://ui.perfetto.dev
//
// Run: go run ./examples/tracing
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/causal"
	"repro/internal/objmodel"
	"repro/internal/stm"
	"repro/internal/trace"
)

func main() {
	heap := objmodel.NewHeap()
	cls := heap.MustDefineClass(objmodel.ClassSpec{
		Name:   "Counter",
		Fields: []objmodel.Field{{Name: "n"}},
	})
	const (
		counters   = 100
		goroutines = 8
		txnsPer    = 5000
	)
	objs := make([]*objmodel.Object, counters)
	for i := range objs {
		objs[i] = heap.New(cls)
	}

	rt := stm.New(heap, stm.Config{})
	tracer := trace.New(trace.Config{})
	recorder := causal.NewRecorder(causal.Config{})
	tracer.SetSink(recorder)
	rt.SetTracer(tracer)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < txnsPer; i++ {
				// Skew: every transaction updates a random counter, and 3 in
				// 4 also update counter #0 — the planted hotspot.
				cold := objs[1+rng.Intn(counters-1)]
				touchHot := rng.Intn(4) > 0
				_ = rt.Atomic(nil, func(tx *stm.Txn) error {
					v := tx.Read(cold, 0)
					var hv uint64
					if touchHot {
						hv = tx.Read(objs[0], 0)
					}
					// Simulated work between read and write: yield so the
					// read-to-write window overlaps other transactions even
					// on a single CPU. This is where real workloads conflict.
					runtime.Gosched()
					tx.Write(cold, 0, v+1)
					if touchHot {
						tx.Write(objs[0], 0, hv+1)
					}
					return nil
				})
			}
		}(int64(g))
	}
	wg.Wait()

	s := rt.Stats.Snapshot()
	fmt.Printf("transactions: %d committed, %d aborted (%.1f%% abort rate)\n",
		s.Commits, s.Aborts, 100*float64(s.Aborts)/float64(s.Starts))

	fmt.Println("\ntop-5 hotspots (conflict attribution):")
	for i, h := range tracer.Hot().Top(5) {
		marker := ""
		if h.Obj == uint64(objs[0].Ref()) {
			marker = "   <- the planted hotspot"
		}
		fmt.Printf("  %d. object #%-6d %6d aborts  %6d conflicts%s\n",
			i+1, h.Obj, h.Aborts, h.Conflicts, marker)
	}

	cl := tracer.CommitLatency().Snapshot()
	fmt.Printf("\ncommit latency: p50 %dns  p99 %dns  mean %.0fns  (n=%d)\n",
		cl.P50Ns, cl.P99Ns, cl.MeanNs, cl.Count)
	gap := tracer.AbortGap().Snapshot()
	if gap.Count > 0 {
		fmt.Printf("abort-to-retry gap: p50 %dns  p99 %dns  (n=%d)\n",
			gap.P50Ns, gap.P99Ns, gap.Count)
	}
	total, dropped := tracer.Recorded()
	fmt.Printf("events recorded: %d (%d beyond ring capacity)\n", total, dropped)

	// The flight recorder saw every event, not just the ring window: walk
	// its conflict DAG for the causal story behind the abort counts.
	rep := causal.Analyze(recorder.Graph())
	fmt.Printf("\ncausal analysis: %d attempts across %d transactions\n", rep.Attempts, rep.Transactions)
	fmt.Printf("  wasted work: %.1f%% of attempt time went to aborted attempts\n", 100*rep.WastedWorkRatio)
	fmt.Printf("  max consecutive aborts: %d", rep.MaxConsecutiveAborts)
	if rep.MaxConsecutiveTxn != 0 {
		fmt.Printf(" (txn %d)", rep.MaxConsecutiveTxn)
	}
	fmt.Println()
	if len(rep.Dominance) > 0 {
		d := rep.Dominance[0]
		fmt.Printf("  dominant object: #%d with %d abort edges, %d wait edges\n", d.Obj, d.Aborts, d.Waits)
	}

	const dumpPath = "tracing.trace.json"
	if err := trace.WriteDumpFile(dumpPath, tracer.DumpState()); err != nil {
		fmt.Println("trace dump:", err)
		return
	}
	fmt.Printf("\nwrote %s — try:\n", dumpPath)
	fmt.Printf("  go run ./cmd/stmtrace starve %s\n", dumpPath)
	fmt.Printf("  go run ./cmd/stmtrace export -perfetto %s > tracing.perfetto.json\n", dumpPath)
}
