// Barriers: watching the paper's JIT optimizations work.
//
// A small TJ program is compiled at each optimization level; the example
// prints one method's IR so you can watch the barrier annotations change:
// every access starts with "barrier: yes" (strong atomicity inserts
// barriers everywhere), immutable/escape elimination turns some into
// "removed(...)", aggregation folds runs into a single acquire/release,
// and the whole-program not-accessed-in-transaction analysis removes the
// rest.
//
// Run: go run ./examples/barriers
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/opt"
)

const src = `
class Point {
  final var id: int;
  var x: int;
  var y: int;
  func setup(n: int) { id = n; }
}
class Stats {
  var count: int;
}
class Main {
  static var shared: Stats;
  static func worker(n: int) {
    for (var i = 0; i < n; i++) {
      atomic { shared.count = shared.count + 1; }
    }
  }
  static func describe(p: Point): int {
    p.x = p.x + 1;       // same object ...
    p.y = p.y + p.x;     // ... back to back: aggregation folds these
    return p.id;         // final field: immutable elimination
  }
  static func main() {
    shared = new Stats();
    var t = spawn Main.worker(100);
    var local = new Point();   // never escapes: escape analysis
    local.setup(7);
    var r = Main.describe(local);
    var c = shared.count;      // races with the transaction: barrier stays
    join(t);
    print(r + c - c);
  }
}`

func main() {
	for _, lvl := range []opt.Level{
		opt.O0NoOpts, opt.O1BarrierElim, opt.O2Aggregate, opt.O4WholeProg,
	} {
		p, err := core.Compile(src, core.Config{Strong: true, OptLevel: lvl})
		if err != nil {
			panic(err)
		}
		rep := p.Report
		fmt.Printf("==== %v ====\n", lvl)
		fmt.Printf("inserted: %d read + %d write barriers; removed: %d immutable, %d escape; aggregated: %d\n",
			rep.TotalReads, rep.TotalWrites, rep.RemovedImmutable, rep.RemovedEscape, rep.AggregatedAccesses)
		if rep.WholeProg != nil {
			fmt.Printf("whole-program: NAIT removed %d reads + %d writes\n",
				rep.WholeProg.NAITReads, rep.WholeProg.NAITWrites)
		}
		fmt.Println(p.DisassembleMethod("Main.describe"))
		res, err := p.Run()
		if err != nil {
			panic(err)
		}
		fmt.Printf("program output: %s\n\n", res.Output)
	}
}
